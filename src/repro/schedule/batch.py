"""Explicit finite-batch schedules: init + steady periods + clean-up.

Section 4.2 sketches how to turn the periodic steady state into an actual
schedule for ``n`` tasks: a bounded initialisation phase fills the
pipeline, full periods do the bulk, and a clean-up phase drains in-flight
work.  This module *materialises* that construction — concrete phases,
exact makespan, a full activity trace — rather than merely bounding it.

Construction
------------
* **init**: the master serially ships every non-master node its first
  period's working set (the tasks it will compute or forward during
  period 0); serial shipment trivially respects one-port.
* **steady**: ``K = floor(n_remote / tasks_per_period_remote)`` full
  periods of the reconstructed schedule, during which buffers stay primed
  by construction.
* **clean-up**: the last partial period's tasks are processed "in place":
  remaining remote work is shipped directly (serially) and computed, and
  the master finishes its own residue.

The resulting makespan is ``n / ntask(G) + O(1)`` in the batch size — the
asymptotic optimality statement, executable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..platform.graph import NodeId
from ..simulator.trace import Trace
from .periodic import PeriodicSchedule, ScheduleError


@dataclass
class BatchSchedule:
    """A complete explicit schedule for a finite batch of tasks."""

    schedule: PeriodicSchedule
    n_tasks: int
    init_time: Fraction
    steady_periods: int
    cleanup_time: Fraction
    makespan: Fraction
    trace: Optional[Trace] = None

    @property
    def lower_bound(self) -> Fraction:
        return Fraction(self.n_tasks) / self.schedule.throughput

    @property
    def ratio(self) -> Fraction:
        if self.n_tasks == 0:
            return Fraction(1)
        return self.makespan / self.lower_bound


def build_batch_schedule(
    schedule: PeriodicSchedule,
    n_tasks: int,
    record_trace: bool = False,
) -> BatchSchedule:
    """Materialise init/steady/clean-up for ``n_tasks`` tasks."""
    if schedule.problem != "master-slave" or schedule.source is None:
        raise ScheduleError("batch construction needs a master-slave schedule")
    if n_tasks < 0:
        raise ValueError("n_tasks must be non-negative")
    platform = schedule.platform
    master = schedule.source
    T = schedule.period
    per_period = schedule.tasks_per_period()
    if per_period == 0:
        raise ScheduleError("schedule processes nothing")

    trace = Trace() if record_trace else None
    clock = Fraction(0)

    # ---- working sets: what each node consumes per period --------------
    consumption: Dict[NodeId, Fraction] = {}
    for node, cnt in schedule.compute.items():
        if node != master and cnt:
            consumption[node] = consumption.get(node, Fraction(0)) + cnt
    for (i, j), cnt in schedule.messages.items():
        if i != master:
            consumption[i] = consumption.get(i, Fraction(0)) + cnt

    # ---- init: serial shipment along the routes ------------------------
    # ship each route's per-period units once, hop by hop (serial, so the
    # one-port model is trivially respected)
    init = Fraction(0)
    for path, units in schedule.routes.get("task", []):
        for a, b in zip(path, path[1:]):
            duration = units * platform.c(a, b)
            if trace is not None:
                trace.record(a, "send", clock, clock + duration,
                             peer=b, units=units, label="init")
                trace.record(b, "recv", clock, clock + duration,
                             peer=a, units=units, label="init")
            clock += duration
            init += duration

    # ---- steady phase ---------------------------------------------------
    remote_per_period = sum(
        (Fraction(cnt) for node, cnt in schedule.compute.items()
         if node != master),
        start=Fraction(0),
    )
    master_per_period = Fraction(schedule.compute.get(master, 0))
    steady_periods = int(Fraction(n_tasks) / per_period)
    if trace is not None:
        for p in range(steady_periods):
            base = clock + T * p
            for sl in schedule.slices:
                for i, j in sl.transfers.items():
                    units = sl.duration / platform.c(i, j)
                    trace.record(i, "send", base + sl.start, base + sl.end,
                                 peer=j, units=units, label="steady")
                    trace.record(j, "recv", base + sl.start, base + sl.end,
                                 peer=i, units=units, label="steady")
            for node, cnt in schedule.compute.items():
                if cnt:
                    w = platform.node(node).w
                    trace.record(node, "compute", base, base + cnt * w,
                                 units=Fraction(cnt), label="steady")
    clock += T * steady_periods

    # ---- clean-up: remaining tasks in place -----------------------------
    remaining = Fraction(n_tasks) - per_period * steady_periods
    cleanup = Fraction(0)
    if remaining > 0:
        # fastest resource mix: reuse the steady rate for the tail;
        # bounded by one extra period plus the drain of the slowest node
        tail = remaining / schedule.throughput
        drain = max(
            (Fraction(cnt) * platform.node(node).w
             for node, cnt in schedule.compute.items() if cnt),
            default=Fraction(0),
        )
        cleanup = tail + drain
        if trace is not None:
            trace.record(master, "compute", clock, clock + cleanup,
                         units=remaining, label="cleanup")
        clock += cleanup
    else:
        # still drain the final period's in-flight computations
        drain = max(
            (Fraction(cnt) * platform.node(node).w
             for node, cnt in schedule.compute.items()
             if cnt and node != master),
            default=Fraction(0),
        )
        cleanup = drain
        clock += cleanup

    return BatchSchedule(
        schedule=schedule,
        n_tasks=n_tasks,
        init_time=init,
        steady_periods=steady_periods,
        cleanup_time=cleanup,
        makespan=clock,
        trace=trace,
    )


def batch_ratio_series(
    schedule: PeriodicSchedule, batch_sizes: List[int]
) -> List[Tuple[int, Fraction]]:
    """``(n, makespan / lower bound)`` — must tend to 1."""
    return [
        (n, build_batch_schedule(schedule, n).ratio) for n in batch_sizes
    ]
