"""Compact periodic schedule description (the object section 4.1 builds).

A :class:`PeriodicSchedule` describes one period of steady-state operation:

* an ordered list of **communication slices** — each a one-port-respecting
  matching of (sender → receiver) transfers with a rational duration;
* per-node **compute allocations** (integer task counts per period);
* per-edge integer **message counts** and per-commodity counts.

The description is *compact*: its size is polynomial in the platform size
(number of slices ≤ |E| + 2p) even when the period ``T`` itself is
exponential — exactly the point made in section 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._rational import format_fraction
from ..platform.graph import Edge, NodeId, Platform
from .edge_coloring import MatchingSlice


class ScheduleError(ValueError):
    """An invalid periodic schedule was constructed or checked."""


@dataclass(frozen=True)
class CommSlice:
    """Concurrent transfers during ``[start, start + duration)``.

    ``transfers`` maps sender -> receiver.  All pairs are edge-disjoint by
    the matching property, so the slice is feasible under the one-port
    model by construction.
    """

    start: Fraction
    duration: Fraction
    transfers: Dict[NodeId, NodeId]

    @property
    def end(self) -> Fraction:
        return self.start + self.duration


@dataclass
class PeriodicSchedule:
    """One steady-state period, plus everything needed to execute it."""

    platform: Platform
    problem: str
    period: Fraction
    throughput: Fraction
    slices: List[CommSlice]
    #: tasks computed per node per period (integers; empty for collectives)
    compute: Dict[NodeId, int] = field(default_factory=dict)
    #: messages per edge per period, all commodities together
    messages: Dict[Edge, int] = field(default_factory=dict)
    #: messages per edge per commodity per period
    commodity_messages: Dict[Tuple[NodeId, NodeId, str], Fraction] = field(
        default_factory=dict
    )
    #: route annotation: (path, units per period), per commodity
    routes: Dict[str, List[Tuple[Tuple[NodeId, ...], Fraction]]] = field(
        default_factory=dict
    )
    source: Optional[NodeId] = None

    # ------------------------------------------------------------------
    def comm_time(self, src: NodeId, dst: NodeId) -> Fraction:
        """Total time edge ``src -> dst`` is busy during one period."""
        total = Fraction(0)
        for sl in self.slices:
            if sl.transfers.get(src) == dst:
                total += sl.duration
        return total

    def port_busy(self, node: NodeId) -> Tuple[Fraction, Fraction]:
        """(send_busy, recv_busy) totals for ``node`` during one period."""
        send = Fraction(0)
        recv = Fraction(0)
        for sl in self.slices:
            if node in sl.transfers:
                send += sl.duration
            if node in sl.transfers.values():
                recv += sl.duration
        return send, recv

    def tasks_per_period(self) -> int:
        return sum(self.compute.values())

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Structural feasibility checks; raise :class:`ScheduleError`.

        * slices are matchings over existing edges, within the period;
        * slices do not overlap in time;
        * per-node send/receive busy time fits in the period (one-port);
        * per-node compute time fits in the period (full overlap: compute
          is checked independently of communication).
        """
        prev_end = Fraction(0)
        for sl in sorted(self.slices, key=lambda s: s.start):
            if sl.start < prev_end:
                raise ScheduleError(
                    f"slices overlap at t = {sl.start} (previous ends {prev_end})"
                )
            if sl.end > self.period:
                raise ScheduleError(
                    f"slice ending {sl.end} exceeds period {self.period}"
                )
            receivers = list(sl.transfers.values())
            if len(set(receivers)) != len(receivers):
                raise ScheduleError("slice is not a matching")
            for u, v in sl.transfers.items():
                if not self.platform.has_edge(u, v):
                    raise ScheduleError(f"transfer on missing edge {u}->{v}")
            prev_end = sl.end
        for node in self.platform.nodes():
            send, recv = self.port_busy(node)
            if send > self.period:
                raise ScheduleError(f"{node} sends for {send} > period")
            if recv > self.period:
                raise ScheduleError(f"{node} receives for {recv} > period")
        for node, count in self.compute.items():
            spec = self.platform.node(node)
            if count and not spec.can_compute:
                raise ScheduleError(f"forwarder {node} assigned {count} tasks")
            if count and count * spec.w > self.period:
                raise ScheduleError(
                    f"{node} needs {count * spec.w} compute time > period "
                    f"{self.period}"
                )

    def check_message_counts(self) -> None:
        """Per-edge busy time must equal messages x edge cost exactly."""
        for (i, j), count in self.messages.items():
            expected = count * self.platform.c(i, j)
            got = self.comm_time(i, j)
            if got != expected:
                raise ScheduleError(
                    f"edge {i}->{j}: busy {got} != {count} msgs x c = {expected}"
                )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"periodic schedule ({self.problem}) on {self.platform.name!r}",
            f"  period T = {format_fraction(self.period)}, "
            f"throughput = {format_fraction(self.throughput)}/time-unit",
            f"  {len(self.slices)} communication slices "
            f"(compact description; see section 4.1)",
        ]
        for sl in self.slices:
            pairs = ", ".join(f"{u}->{v}" for u, v in sorted(sl.transfers.items()))
            lines.append(
                f"    [{format_fraction(sl.start)}, "
                f"{format_fraction(sl.end)}): {pairs}"
            )
        if self.compute:
            done = ", ".join(
                f"{n}: {c}" for n, c in sorted(self.compute.items()) if c
            )
            lines.append(f"  tasks per period: {done or '(none)'}")
        return "\n".join(lines)
