"""From LP activities to an executable periodic schedule (section 4.1).

The pipeline is exactly the paper's:

1. solve the steady-state LP (rational optimum) →
   :class:`~repro.core.activities.SteadyStateSolution`;
2. derive the integer period ``T`` (lcm of denominators);
3. build the bipartite communication graph — one *sender* copy and one
   *receiver* copy of each node, edge ``i_send -> j_recv`` weighted by the
   total communication time ``s_ij * T``;
4. decompose it into matchings with the weighted edge-colouring algorithm;
   each matching becomes a :class:`~repro.schedule.periodic.CommSlice`;
5. annotate with integer per-edge message counts and route decompositions.

The resulting schedule executes all of a period's communications in
``max_port_load <= T`` time, so it always fits; computations overlap
communications (full-overlap model) and are checked to fit independently.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from ..core.activities import SteadyStateSolution
from ..platform.graph import Edge, NodeId
from .edge_coloring import MatchingSlice, weighted_edge_coloring
from .flows import check_flow_conservation, decompose_flow
from .periodic import CommSlice, PeriodicSchedule, ScheduleError

SEND = "send"
RECV = "recv"


def reconstruct_schedule(
    solution: SteadyStateSolution,
    period: Optional[int] = None,
) -> PeriodicSchedule:
    """Build the periodic schedule realising ``solution``.

    ``period`` overrides the minimal period (must be a positive multiple
    of it); useful for the fixed-period study of section 5.4.
    """
    T = solution.period()
    if period is not None:
        if period <= 0 or Fraction(period) % T != 0:
            raise ScheduleError(
                f"requested period {period} is not a positive multiple of "
                f"the minimal period {T}"
            )
        T = period

    busy = solution.edge_busy_time(T)
    bip_edges = [
        ((SEND, i), (RECV, j), t) for (i, j), t in busy.items() if t > 0
    ]
    matchings = weighted_edge_coloring(bip_edges)

    slices: List[CommSlice] = []
    clock = Fraction(0)
    for m in matchings:
        transfers = {u[1]: v[1] for u, v in m.pairs.items()}
        slices.append(CommSlice(start=clock, duration=m.duration, transfers=transfers))
        clock += m.duration
    if clock > T:
        raise ScheduleError(
            f"communication slices total {clock} > period {T} "
            "(one-port constraints violated upstream)"
        )

    compute = solution.tasks_per_period(T) if solution.alpha else {}
    messages = solution.messages_per_period(T)

    commodity_messages: Dict[Tuple[NodeId, NodeId, str], Fraction] = {}
    for (i, j, k), rate in solution.send.items():
        if rate > 0:
            commodity_messages[(i, j, k)] = rate * T

    routes: Dict[str, List[Tuple[Tuple[NodeId, ...], Fraction]]] = {}
    if solution.problem == "master-slave" and solution.source is not None:
        flow = {
            (i, j): solution.edge_rate(i, j) * T
            for (i, j) in solution.s
            if solution.s[(i, j)] > 0
        }
        demands = {
            n: solution.compute_rate(n) * T
            for n in solution.alpha
            if n != solution.source and solution.compute_rate(n) > 0
        }
        check_flow_conservation(solution.platform, flow, solution.source, demands)
        routes["task"] = decompose_flow(
            solution.platform, flow, solution.source, demands
        )
    elif solution.send and (
        solution.problem == "all-to-all" or solution.source is not None
    ):
        # every other commodity flow differs only in where a commodity
        # originates and where it is consumed:
        #   all-to-all — commodities are named "a->b", each with its own
        #     source and sink;
        #   gather — commodity k points AT the sink: sourced at node k,
        #     consumed at solution.source (the reverse orientation of
        #     scatter's source-outward flows);
        #   scatter and friends — sourced at solution.source, consumed
        #     at target k.
        for k in sorted({key for (_, _, key) in solution.send}):
            if solution.problem == "all-to-all":
                origin, consumer = k.split("->")
            elif solution.problem == "gather":
                origin, consumer = k, solution.source
            else:
                origin, consumer = solution.source, k
            flow = {
                (i, j): rate * T
                for (i, j, kk), rate in solution.send.items()
                if kk == k and rate > 0
            }
            demands = {consumer: solution.throughput * T}
            routes[k] = decompose_flow(solution.platform, flow, origin, demands)

    schedule = PeriodicSchedule(
        platform=solution.platform,
        problem=solution.problem,
        period=Fraction(T),
        throughput=solution.throughput,
        slices=slices,
        compute=compute,
        messages=messages,
        commodity_messages=commodity_messages,
        routes=routes,
        source=solution.source,
    )
    schedule.validate()
    schedule.check_message_counts()
    return schedule
