"""Decomposition of steady-state edge flows into weighted routes.

The LP returns *edge* rates; to annotate a periodic schedule with "which
task file travels along which route" (and to drive the simulator's buffer
accounting) we decompose each commodity's edge-flow into simple source→sink
paths, after cancelling any circulation the LP's degenerate optima may
contain.  Classical flow decomposition: at most ``|E|`` paths plus ``|E|``
cancelled cycles.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..platform.graph import Edge, NodeId, Platform

PathFlow = Tuple[Tuple[NodeId, ...], Fraction]


class FlowError(ValueError):
    """Flow does not satisfy conservation / demands."""


def cancel_cycles(flow: Dict[Edge, Fraction]) -> Dict[Edge, Fraction]:
    """Remove circulations from an edge flow (returns a new dict).

    Repeatedly finds a directed cycle in the positive-flow subgraph and
    subtracts its bottleneck.  Terminates because each round zeroes at
    least one edge.  Cycle cancellation never changes any node's net flow,
    so conservation and demands are preserved while edge usage can only
    decrease (hence the resulting schedule is still feasible).
    """
    residual = {e: f for e, f in flow.items() if f > 0}
    while True:
        succ: Dict[NodeId, List[NodeId]] = {}
        for (u, v) in residual:
            succ.setdefault(u, []).append(v)
        # DFS-based cycle detection with colouring.
        color: Dict[NodeId, int] = {}
        stack_path: List[NodeId] = []
        cycle: Optional[List[NodeId]] = None

        def dfs(u: NodeId) -> bool:
            nonlocal cycle
            color[u] = 1
            stack_path.append(u)
            for v in succ.get(u, ()):  # noqa: B023 — rebuilt each round
                if color.get(v, 0) == 1:
                    cycle = stack_path[stack_path.index(v):] + [v]
                    return True
                if color.get(v, 0) == 0 and dfs(v):
                    return True
            color[u] = 2
            stack_path.pop()
            return False

        for node in list(succ):
            if color.get(node, 0) == 0:
                if dfs(node):
                    break
        if cycle is None:
            return residual
        edges = [(cycle[i], cycle[i + 1]) for i in range(len(cycle) - 1)]
        bottleneck = min(residual[e] for e in edges)
        for e in edges:
            residual[e] -= bottleneck
            if residual[e] == 0:
                del residual[e]


def decompose_flow(
    platform: Platform,
    flow: Mapping[Edge, Fraction],
    source: NodeId,
    demands: Mapping[NodeId, Fraction],
) -> List[PathFlow]:
    """Decompose ``flow`` into simple paths ``source -> demand node``.

    Parameters
    ----------
    flow:
        Edge rates (commodity units per time-unit).
    demands:
        How much each node consumes per time-unit (the master's own
        consumption must *not* be included — it never crosses an edge).

    Returns ``(path, rate)`` pairs such that summing rates per edge
    reproduces ``flow`` up to cancelled cycles, and summing rates per final
    node meets every demand exactly.
    """
    residual = cancel_cycles(dict(flow))
    need: Dict[NodeId, Fraction] = {
        n: d for n, d in demands.items() if d > 0 and n != source
    }
    paths: List[PathFlow] = []
    guard = 0
    max_rounds = 4 * (len(flow) + len(need) + 1)
    while need:
        guard += 1
        if guard > max_rounds:
            raise FlowError(
                "flow decomposition did not converge (flow inconsistent "
                "with demands?)"
            )
        # Walk from the source along positive edges towards any needy node,
        # preferring unvisited nodes (the residual graph is acyclic now, so
        # a greedy walk cannot loop).
        path = [source]
        seen = {source}
        while True:
            u = path[-1]
            if u in need and (u != source):
                break
            nxt = None
            for v in platform.successors(u):
                if residual.get((u, v), Fraction(0)) > 0 and v not in seen:
                    nxt = v
                    break
            if nxt is None:
                raise FlowError(
                    f"stuck at {u}: no positive out-edge while demands "
                    f"remain ({dict(need)})"
                )
            path.append(nxt)
            seen.add(nxt)
        sink = path[-1]
        edges = [(path[i], path[i + 1]) for i in range(len(path) - 1)]
        bottleneck = need[sink]
        for e in edges:
            bottleneck = min(bottleneck, residual[e])
        if bottleneck <= 0:
            raise FlowError("internal error: zero bottleneck")  # pragma: no cover
        for e in edges:
            residual[e] -= bottleneck
            if residual[e] == 0:
                del residual[e]
        need[sink] -= bottleneck
        if need[sink] == 0:
            del need[sink]
        paths.append((tuple(path), bottleneck))
    return paths


def check_flow_conservation(
    platform: Platform,
    flow: Mapping[Edge, Fraction],
    source: NodeId,
    demands: Mapping[NodeId, Fraction],
) -> None:
    """Verify in = out + demand at every non-source node; raise otherwise."""
    for node in platform.nodes():
        if node == source:
            continue
        inflow = sum(
            (flow.get((j, node), Fraction(0))
             for j in platform.predecessors(node)),
            start=Fraction(0),
        )
        outflow = sum(
            (flow.get((node, j), Fraction(0))
             for j in platform.successors(node)),
            start=Fraction(0),
        )
        demand = demands.get(node, Fraction(0))
        if inflow != outflow + demand:
            raise FlowError(
                f"conservation fails at {node}: in {inflow} != "
                f"out {outflow} + demand {demand}"
            )
