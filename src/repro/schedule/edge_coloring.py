"""Weighted edge colouring of bipartite communication graphs (§4.1).

The paper orchestrates one period's communications as follows: build a
bipartite graph with a *sender* copy and a *receiver* copy of every node;
weight the edge ``P_send_i -> P_recv_j`` by the total communication time of
``i -> j`` during the period; decompose the weighted graph into **weighted
matchings** — only communications forming a matching may run concurrently
under the one-port model.  The algorithm referenced is the weighted
edge-colouring of bipartite graphs (Schrijver, Combinatorial Optimization,
vol. A, ch. 20), which yields a polynomial number of matchings (no more
than ``|E|`` up to padding) whose durations sum to the maximum port load.

We implement the classical Birkhoff–von-Neumann-style procedure:

1. *Pad* the weighted bipartite graph with dummy edges (and, if needed,
   dummy vertices) until every vertex has identical load ``L`` — the
   analogue of completing a sub-stochastic matrix to a doubly stochastic
   one.  Each padding edge closes at least one vertex's deficit, so at most
   ``n_send + n_recv`` dummies are added.
2. Repeatedly extract a **perfect matching** on the support of the padded
   graph (it exists by Hall's theorem while all loads are equal), schedule
   it for ``d = min`` weight over its edges, and subtract.  Each round
   drives at least one edge to zero, so at most ``|E| + n_send + n_recv``
   matchings are produced — the paper's "compact description of the
   schedule" even when the period ``T`` is exponentially large.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from .._rational import as_fraction
from .matching import perfect_matching

Vertex = Hashable
WeightedEdge = Tuple[Vertex, Vertex, Fraction]


class EdgeColoringError(ValueError):
    """Raised when the input is not a valid weighted bipartite graph."""


@dataclass(frozen=True)
class MatchingSlice:
    """A set of simultaneous communications and its duration.

    ``pairs`` maps sender -> receiver; by construction each sender and each
    receiver appears at most once, so running all pairs concurrently obeys
    the one-port constraint.
    """

    pairs: Dict[Vertex, Vertex]
    duration: Fraction

    def __post_init__(self) -> None:
        receivers = list(self.pairs.values())
        if len(set(receivers)) != len(receivers):
            raise EdgeColoringError("slice pairs do not form a matching")
        if self.duration <= 0:
            raise EdgeColoringError(f"non-positive duration {self.duration}")


def vertex_loads(
    edges: Sequence[WeightedEdge],
) -> Tuple[Dict[Vertex, Fraction], Dict[Vertex, Fraction]]:
    """Total weight per sender and per receiver."""
    send: Dict[Vertex, Fraction] = {}
    recv: Dict[Vertex, Fraction] = {}
    for u, v, w in edges:
        send[u] = send.get(u, Fraction(0)) + w
        recv[v] = recv.get(v, Fraction(0)) + w
    return send, recv


def weighted_edge_coloring(
    edges: Sequence[WeightedEdge],
) -> List[MatchingSlice]:
    """Decompose a weighted bipartite graph into matching slices.

    Parameters
    ----------
    edges:
        ``(sender, receiver, weight)`` triples; weights must be positive
        rationals and each (sender, receiver) pair must appear once.

    Returns
    -------
    list of :class:`MatchingSlice`
        Durations sum to the maximum vertex load; for every input edge the
        total duration of slices containing it equals its weight; the
        number of slices is at most ``|E| + n_send + n_recv``.
    """
    work: Dict[Tuple[Vertex, Vertex], Fraction] = {}
    for u, v, w in edges:
        wf = as_fraction(w) if not isinstance(w, Fraction) else w
        if wf < 0:
            raise EdgeColoringError(f"negative weight on {u} -> {v}")
        if wf == 0:
            continue
        key = (u, v)
        if key in work:
            raise EdgeColoringError(f"duplicate edge {u} -> {v}")
        work[key] = wf
    if not work:
        return []

    send_load, recv_load = vertex_loads([(u, v, w) for (u, v), w in work.items()])
    L = max(max(send_load.values()), max(recv_load.values()))

    # --- pad to an equal-load graph -----------------------------------
    # Dummy vertices equalise the two sides' total deficit; dummy edges
    # (tracked separately from real ones) close the per-vertex deficits.
    senders = list(send_load)
    receivers = list(recv_load)
    n = max(len(senders), len(receivers))
    for k in range(n - len(senders)):
        senders.append(("__dummy_send__", k))
        send_load[("__dummy_send__", k)] = Fraction(0)
    for k in range(n - len(receivers)):
        receivers.append(("__dummy_recv__", k))
        recv_load[("__dummy_recv__", k)] = Fraction(0)

    dummy: Dict[Tuple[Vertex, Vertex], Fraction] = {}
    deficit_s = {u: L - send_load[u] for u in senders}
    deficit_r = {v: L - recv_load[v] for v in receivers}
    pending_s = [u for u in senders if deficit_s[u] > 0]
    pending_r = [v for v in receivers if deficit_r[v] > 0]
    si = ri = 0
    while si < len(pending_s) and ri < len(pending_r):
        u, v = pending_s[si], pending_r[ri]
        d = min(deficit_s[u], deficit_r[v])
        if d > 0:
            dummy[(u, v)] = dummy.get((u, v), Fraction(0)) + d
            deficit_s[u] -= d
            deficit_r[v] -= d
        if deficit_s[u] == 0:
            si += 1
        if deficit_r[v] == 0:
            ri += 1
    if any(deficit_s[u] != 0 for u in senders) or any(
        deficit_r[v] != 0 for v in receivers
    ):
        raise EdgeColoringError("internal error: padding failed")  # pragma: no cover

    # --- peel perfect matchings ---------------------------------------
    # A (u, v) pair may carry a real edge and a dummy edge in parallel;
    # each slice consumes from exactly one of the two (real first), so that
    # the real edge appears in slices for exactly its weight.
    slices: List[MatchingSlice] = []
    remaining = L
    while remaining > 0:
        adjacency: Dict[Vertex, List[Vertex]] = {u: [] for u in senders}
        for (u, v), w in work.items():
            if w > 0:
                adjacency[u].append(v)
        for (u, v), w in dummy.items():
            if w > 0 and work.get((u, v), Fraction(0)) <= 0:
                adjacency[u].append(v)
        matching = perfect_matching(adjacency, left_size=len(senders))
        d = remaining
        for u, v in matching.items():
            real_w = work.get((u, v), Fraction(0))
            d = min(d, real_w if real_w > 0 else dummy[(u, v)])
        real_pairs: Dict[Vertex, Vertex] = {}
        for u, v in matching.items():
            real_w = work.get((u, v), Fraction(0))
            if real_w > 0:
                work[(u, v)] = real_w - d
                real_pairs[u] = v
            else:
                dummy[(u, v)] -= d
                if dummy[(u, v)] < 0:
                    raise EdgeColoringError(
                        "internal error: dummy underflow"
                    )  # pragma: no cover
        if real_pairs:
            slices.append(MatchingSlice(pairs=real_pairs, duration=d))
        remaining -= d
    if any(w != 0 for w in work.values()):
        raise EdgeColoringError(
            "internal error: leftover weight after decomposition"
        )  # pragma: no cover
    return slices


def verify_coloring(
    edges: Sequence[WeightedEdge], slices: Sequence[MatchingSlice]
) -> None:
    """Check the decomposition invariants; raise on any violation.

    * every slice is a matching (enforced by construction, re-checked);
    * per-edge durations sum exactly to the edge weight;
    * total duration equals the maximum vertex load.
    """
    covered: Dict[Tuple[Vertex, Vertex], Fraction] = {}
    for sl in slices:
        receivers = list(sl.pairs.values())
        if len(set(receivers)) != len(receivers):
            raise EdgeColoringError("slice is not a matching")
        for u, v in sl.pairs.items():
            covered[(u, v)] = covered.get((u, v), Fraction(0)) + sl.duration
    expected = {(u, v): w for u, v, w in edges if w > 0}
    if set(covered) != set(expected):
        missing = set(expected) - set(covered)
        extra = set(covered) - set(expected)
        raise EdgeColoringError(
            f"edge cover mismatch: missing {missing}, extra {extra}"
        )
    for key, w in expected.items():
        if covered[key] != w:
            raise EdgeColoringError(
                f"edge {key} covered {covered[key]} != weight {w}"
            )
    send_load, recv_load = vertex_loads(edges)
    if edges:
        L = max(max(send_load.values()), max(recv_load.values()))
        total = sum((sl.duration for sl in slices), start=Fraction(0))
        if total > L:
            raise EdgeColoringError(f"slices total {total} exceed max load {L}")
