"""Schedule reconstruction substrate (section 4.1 and the section 5
extensions): matchings, weighted edge colouring, flow decomposition,
periodic schedules, start-up grouping and fixed-period rounding."""

from .matching import hopcroft_karp, perfect_matching
from .edge_coloring import (
    EdgeColoringError,
    MatchingSlice,
    verify_coloring,
    vertex_loads,
    weighted_edge_coloring,
)
from .flows import FlowError, cancel_cycles, check_flow_conservation, decompose_flow
from .periodic import CommSlice, PeriodicSchedule, ScheduleError
from .reconstruction import reconstruct_schedule
from .batch import BatchSchedule, batch_ratio_series, build_batch_schedule
from .collective import packing_to_schedule, tree_routes
from .fixed_period import (
    fixed_period_schedule,
    rounding_loss_bound,
    throughput_vs_period,
)
from .send_or_receive import (
    reconstruct_send_or_receive_schedule,
    schedule_to_trace,
)
from .startup import (
    StartupAnalysis,
    asymptotic_ratio_bound,
    default_group_count,
    grouped_schedule_makespan,
)

__all__ = [
    "hopcroft_karp",
    "perfect_matching",
    "EdgeColoringError",
    "MatchingSlice",
    "verify_coloring",
    "vertex_loads",
    "weighted_edge_coloring",
    "FlowError",
    "cancel_cycles",
    "check_flow_conservation",
    "decompose_flow",
    "CommSlice",
    "PeriodicSchedule",
    "ScheduleError",
    "reconstruct_schedule",
    "packing_to_schedule",
    "tree_routes",
    "fixed_period_schedule",
    "rounding_loss_bound",
    "throughput_vs_period",
    "StartupAnalysis",
    "asymptotic_ratio_bound",
    "default_group_count",
    "grouped_schedule_makespan",
    "reconstruct_send_or_receive_schedule",
    "schedule_to_trace",
    "BatchSchedule",
    "batch_ratio_series",
    "build_batch_schedule",
]
