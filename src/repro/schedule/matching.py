"""Maximum bipartite matching (Hopcroft–Karp), implemented from scratch.

Used by the weighted edge-colouring decomposition (section 4.1) to extract
the per-slice communication matchings.  Cross-checked against networkx in
the test-suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

Vertex = Hashable


def hopcroft_karp(
    adjacency: Mapping[Vertex, Iterable[Vertex]]
) -> Dict[Vertex, Vertex]:
    """Maximum matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        Maps each *left* vertex to its right neighbours.  Left and right
        vertex namespaces may overlap; they are treated as distinct sides.

    Returns
    -------
    dict
        ``left -> right`` pairs of a maximum matching.

    Complexity ``O(E sqrt(V))``.
    """
    left = list(adjacency)
    adj: Dict[Vertex, List[Vertex]] = {u: list(vs) for u, vs in adjacency.items()}
    match_l: Dict[Vertex, Optional[Vertex]] = {u: None for u in left}
    match_r: Dict[Vertex, Optional[Vertex]] = {}
    for vs in adj.values():
        for v in vs:
            match_r.setdefault(v, None)

    # BFS layer distances are integers below 2*|left|; an unreachable
    # integer sentinel keeps the module float-free
    INF = 2 * len(left) + 1
    dist: Dict[Vertex, int] = {}

    def bfs() -> bool:
        queue: deque = deque()
        for u in left:
            if match_l[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                w = match_r[v]
                if w is None:
                    found = True
                elif dist[w] == INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def dfs(u: Vertex) -> bool:
        for v in adj[u]:
            w = match_r[v]
            if w is None or (dist.get(w, INF) == dist[u] + 1 and dfs(w)):
                match_l[u] = v
                match_r[v] = u
                return True
        dist[u] = INF
        return False

    while bfs():
        for u in left:
            if match_l[u] is None:
                dfs(u)
    return {u: v for u, v in match_l.items() if v is not None}


def perfect_matching(
    adjacency: Mapping[Vertex, Iterable[Vertex]],
    left_size: Optional[int] = None,
) -> Dict[Vertex, Vertex]:
    """Perfect matching saturating every left vertex; raises if none exists.

    The edge-colouring decomposition calls this on the support of an
    equal-load bipartite graph, where Hall's condition guarantees
    existence (Birkhoff–von-Neumann argument).
    """
    matching = hopcroft_karp(adjacency)
    n = left_size if left_size is not None else len(adjacency)
    if len(matching) != n:
        raise ValueError(
            f"no perfect matching: matched {len(matching)} of {n} left vertices"
        )
    return matching
