"""Exact rational arithmetic helpers shared across the library.

The steady-state methodology (section 4.1 of the paper) relies on the LP
optimum being *rational*: the period ``T`` is the least common multiple of
the denominators of the activity variables, which only makes sense with
exact arithmetic.  Every quantity that flows from the LP into schedule
reconstruction is therefore a :class:`fractions.Fraction`.

Infinite weights are represented by :data:`INF` (``math.inf``); they never
enter LP tableaux (variables attached to infinite-cost resources are pinned
to zero instead).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Union

#: Marker for "no link" / "no computing power" (section 2 of the paper).
INF = math.inf

#: Anything convertible to an exact rational (or infinite).
RationalLike = Union[int, float, str, Fraction]


def as_fraction(value: RationalLike) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted via :meth:`Fraction.limit_denominator` with a large
    bound (10**12) so that values like ``0.1`` round-trip to ``1/10`` rather
    than the binary expansion.  Exact integers, strings (``"1/3"``) and
    Fractions pass through unchanged.

    Raises
    ------
    ValueError
        If ``value`` is infinite or NaN (those must be handled by callers
        before reaching rational arithmetic).
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if math.isinf(value) or math.isnan(value):
            raise ValueError(f"cannot convert non-finite value {value!r} to Fraction")
        return Fraction(value).limit_denominator(10**12)
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as a rational number")


def is_infinite(value: RationalLike) -> bool:
    """True when ``value`` denotes an infinite weight (missing link/CPU)."""
    return isinstance(value, float) and math.isinf(value)


def lcm_denominators(values: Iterable[Fraction]) -> int:
    """Least common multiple of the denominators of ``values``.

    This is exactly the paper's period construction: *"we take the least
    common multiple of the denominators, and thus we derive an integer
    period T"* (section 3.1).  Returns 1 for an empty iterable.
    """
    lcm = 1
    for v in values:
        if not isinstance(v, Fraction):
            v = as_fraction(v)
        lcm = math.lcm(lcm, v.denominator)
    return lcm


def frac_gcd(values: Iterable[Fraction]) -> Fraction:
    """Greatest common divisor of a set of fractions.

    ``gcd(a/b, c/d) = gcd(a, c) / lcm(b, d)``; useful to find the coarsest
    time grid on which a set of rational durations aligns.
    """
    num_gcd = 0
    den_lcm = 1
    seen = False
    for v in values:
        if not isinstance(v, Fraction):
            v = as_fraction(v)
        if v == 0:
            continue
        seen = True
        num_gcd = math.gcd(num_gcd, abs(v.numerator))
        den_lcm = math.lcm(den_lcm, v.denominator)
    if not seen:
        return Fraction(0)
    return Fraction(num_gcd, den_lcm)


def format_fraction(value: Fraction, max_len: int = 12) -> str:
    """Human-friendly rendering: integers plain, else ``p/q`` or a float."""
    if not isinstance(value, Fraction):
        return str(value)
    if value.denominator == 1:
        return str(value.numerator)
    text = f"{value.numerator}/{value.denominator}"
    if len(text) <= max_len:
        return text
    return f"{float(value):.6g}"
