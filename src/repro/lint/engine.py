"""Core of the ``repro lint`` static-analysis framework.

The exactness contract — results ``Fraction``-identical across warm
restarts, shards and hosts — and the service layer's lock/tracing
discipline rest on conventions a reviewer has to hold in their head.
This module turns them into machine-checked invariants: an ``ast``-based
checker registry (stdlib only, mirroring :mod:`repro.problems.registry`),
per-file suppression pragmas, a JSON/text reporter and a baseline file
so the gate can be adopted incrementally on a dirty tree.

Pragmas (comments, parsed with :mod:`tokenize` so strings never match):

* ``# repro-lint: allow(<rule>[, <rule>...])`` — trailing on a code
  line, suppresses those rules' findings on that physical line; on a
  comment line of its own it covers the next line, except at the very
  top of the file (before any statement) where it covers the whole
  file.  ``allow(*)`` suppresses every rule.  Each allow should carry
  a justification in the same comment — the pragma is the sanctioned
  escape hatch, the justification is for the reviewer.
* ``# repro-lint: scope(<rule>)`` — opts the file *into* a rule whose
  default scope is path-based (used by the fixture corpus under
  ``tests/lint_fixtures/`` and by new exact modules not yet listed in
  the checker's path map).

Directory walks skip ``lint_fixtures`` directories (deliberate
violations used by the test-suite); explicitly named files are always
checked.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Bumped when the JSON report schema changes shape.
REPORT_VERSION = 1

#: Directory names never descended into during a path walk.
SKIP_DIRS = frozenset({"__pycache__", "lint_fixtures", ".git", ".hg"})

_PRAGMA_RE = re.compile(r"repro-lint:\s*(allow|scope)\(([^)]*)\)")


class LintError(ValueError):
    """Framework misuse: bad registration, unreadable baseline, ..."""


# ----------------------------------------------------------------------
# findings
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str

    @property
    def baseline_key(self) -> str:
        # line numbers drift with unrelated edits; a baseline entry is
        # keyed on what the finding *says*, not where it currently sits
        return f"{self.rule}::{self.path}::{self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


# ----------------------------------------------------------------------
# per-file context handed to checkers
# ----------------------------------------------------------------------
class ModuleInfo:
    """A parsed source file plus its comments and pragmas."""

    def __init__(self, path: str, display_path: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        #: (line, col, text) of every comment token, 1-based lines
        self.comments: List[Tuple[int, int, str]] = _extract_comments(source)
        self._file_allows: Set[str] = set()
        self._line_allows: Dict[int, Set[str]] = {}
        self._scopes: Set[str] = set()
        first_code = _first_code_line(tree)
        for line, col, text in self.comments:
            for verb, rules_text in _PRAGMA_RE.findall(text):
                rules = {r.strip() for r in rules_text.split(",") if r.strip()}
                if verb == "scope":
                    self._scopes |= rules
                elif not _comment_owns_line(source, line, col):
                    self._line_allows.setdefault(line, set()).update(rules)
                elif line < first_code:
                    self._file_allows |= rules
                else:
                    # standalone pragma mid-file: covers the next code
                    # line (comment/blank lines in between are skipped)
                    target = _next_code_line(source, line)
                    self._line_allows.setdefault(target, set()).update(rules)

    def scoped(self, rule: str) -> bool:
        """True when a ``scope(<rule>)`` pragma opts this file in."""
        return rule in self._scopes

    def allowed(self, rule: str, line: int) -> bool:
        """True when a pragma suppresses ``rule`` findings at ``line``."""
        if rule in self._file_allows or "*" in self._file_allows:
            return True
        allows = self._line_allows.get(line, ())
        return rule in allows or "*" in allows


def _extract_comments(source: str) -> List[Tuple[int, int, str]]:
    comments: List[Tuple[int, int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenizeError, IndentationError):
        pass  # the ast parse already succeeded; comments best-effort
    return comments


def _comment_owns_line(source: str, line: int, col: int) -> bool:
    """True when nothing but whitespace precedes the comment."""
    text = source.splitlines()[line - 1][:col]
    return not text.strip()


def _next_code_line(source: str, line: int) -> int:
    """First line after ``line`` that is not blank or a pure comment."""
    lines = source.splitlines()
    for idx in range(line, len(lines)):
        stripped = lines[idx].strip()
        if stripped and not stripped.startswith("#"):
            return idx + 1  # 1-based
    return line + 1


def _first_code_line(tree: ast.Module) -> int:
    """Line of the first statement past the module docstring."""
    body = tree.body
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        body = body[1:]
    return body[0].lineno if body else 1 << 30


# ----------------------------------------------------------------------
# checker registry
# ----------------------------------------------------------------------
class Checker:
    """Base class: one rule, run over every applicable module.

    Subclasses set :attr:`rule` and :attr:`description`, implement
    :meth:`check` (per-file findings) and may override
    :meth:`applies_to` (path/scope gating, default: every file) and
    :meth:`finalize` (project-level findings emitted after all files,
    e.g. the registry cross-checks of the drift rule).  A fresh checker
    instance is built per :func:`run_lint` call, so instance state may
    accumulate across files.
    """

    rule: str = ""
    description: str = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        return True

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def finalize(self) -> Iterator[Finding]:
        return iter(())


_CHECKERS: Dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if not cls.rule:
        raise LintError(f"checker {cls.__name__} declares no rule name")
    if cls.rule in _CHECKERS:
        raise LintError(f"duplicate checker rule {cls.rule!r}")
    _CHECKERS[cls.rule] = cls
    return cls


def unregister_checker(rule: str) -> None:
    """Remove a registered rule (test hook)."""
    _CHECKERS.pop(rule, None)


def registered_rules() -> Tuple[str, ...]:
    _load_builtin_checkers()
    return tuple(sorted(_CHECKERS))


def checker_descriptions() -> Dict[str, str]:
    _load_builtin_checkers()
    return {rule: cls.description for rule, cls in sorted(_CHECKERS.items())}


def _load_builtin_checkers() -> None:
    from . import checkers  # noqa: F401 — import side effect registers


# ----------------------------------------------------------------------
# baseline files
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Set[str]:
    """Read a baseline file written by :func:`write_baseline`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("findings"), list):
        raise LintError(f"baseline {path} is not a repro-lint baseline")
    return {str(key) for key in data["findings"]}


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    data = {
        "version": REPORT_VERSION,
        "findings": sorted({f.baseline_key for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one lint pass."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "findings": [f.as_dict() for f in self.findings],
            "suppressed_count": len(self.suppressed),
            "baselined_count": len(self.baselined),
            "baselined": sorted(f.baseline_key for f in self.baselined),
        }

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule))]
        counts = (f"{self.files_checked} files, "
                  f"{len(self.findings)} finding(s), "
                  f"{len(self.suppressed)} suppressed, "
                  f"{len(self.baselined)} baselined")
        if lines:
            return "\n".join(lines) + f"\n\nrepro lint FAILED: {counts}"
        return f"repro lint OK: {counts}"


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (walks skip SKIP_DIRS and
    hidden directories; explicitly named files are always yielded)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            raise LintError(f"no such file or directory: {path}")
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _display_path(path: str, root: Optional[str]) -> str:
    out = path
    if root:
        try:
            rel = os.path.relpath(path, root)
            if not rel.startswith(".."):
                out = rel
        except ValueError:  # different drive on windows
            pass
    return out.replace(os.sep, "/")


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
    root: Optional[str] = None,
) -> LintReport:
    """Run the registered checkers over ``paths`` and classify findings.

    ``rules`` restricts to a subset of registered rules; ``baseline``
    is a set of :attr:`Finding.baseline_key` strings treated as known
    debt (reported separately, not failures); ``root`` anchors the
    repo-relative display paths (default: the current directory).
    """
    _load_builtin_checkers()
    root = os.path.abspath(root or os.getcwd())
    if rules is not None:
        unknown = sorted(set(rules) - set(_CHECKERS))
        if unknown:
            raise LintError(f"unknown rule(s): {', '.join(unknown)}")
        selected = [cls() for name, cls in sorted(_CHECKERS.items())
                    if name in set(rules)]
    else:
        selected = [cls() for _, cls in sorted(_CHECKERS.items())]

    report = LintReport(rules=tuple(c.rule for c in selected))
    modules: Dict[str, ModuleInfo] = {}
    raw: List[Finding] = []

    for path in iter_python_files(paths):
        display = _display_path(os.path.abspath(path), root)
        if display in modules:
            continue
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            raw.append(Finding("syntax", display, line, 0,
                               f"cannot parse: {exc}"))
            continue
        report.files_checked += 1
        module = ModuleInfo(path, display, source, tree)
        modules[display] = module
        for checker in selected:
            if checker.applies_to(module):
                raw.extend(checker.check(module))
    for checker in selected:
        raw.extend(checker.finalize())

    baseline = baseline or set()
    for finding in raw:
        module = modules.get(finding.path)
        if module is not None and module.allowed(finding.rule, finding.line):
            report.suppressed.append(finding)
        elif finding.baseline_key in baseline:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report
