"""Argument handling for ``python -m repro lint``.

Kept separate from :mod:`repro.cli` so the lint framework stays
importable (and testable) without dragging in the solver CLI; the
``repro`` CLI mounts :func:`add_arguments`/:func:`run` on its ``lint``
subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .engine import (
    LintError,
    checker_descriptions,
    load_baseline,
    run_lint,
    write_baseline,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to check (default: src)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the JSON report instead of text")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="suppress findings recorded in this baseline file "
             "(reported as baselined, not failures)")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current findings to FILE as a new baseline "
             "and exit 0")
    parser.add_argument(
        "--rules", metavar="RULE[,RULE...]",
        help="run only these rules (default: all registered)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and exit")


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule, description in checker_descriptions().items():
            print(f"{rule:12s} {description}")
        return 0
    try:
        baseline = load_baseline(args.baseline) if args.baseline else None
        rules = ([r.strip() for r in args.rules.split(",") if r.strip()]
                 if args.rules else None)
        report = run_lint(args.paths, rules=rules, baseline=baseline)
    except LintError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2
    if args.write_baseline:
        write_baseline(args.write_baseline, report.findings)
        print(f"wrote {len(report.findings)} finding(s) to baseline "
              f"{args.write_baseline}")
        return 0
    if args.as_json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checkers for the reproduction")
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
