"""``repro lint`` — AST-based invariant checkers for the reproduction.

Stdlib-only static analysis enforcing the invariants the codebase's
guarantees rest on: exact (float-free) LP paths, lock discipline over
``# guarded-by:`` annotated shared state, wire/registry drift, and
tracing discipline.  See :mod:`repro.lint.engine` for the framework
and ``repro.lint.checkers`` for the rules; ``python -m repro lint``
is the CLI entry point.
"""

from .engine import (
    Checker,
    Finding,
    LintError,
    LintReport,
    ModuleInfo,
    REPORT_VERSION,
    checker_descriptions,
    load_baseline,
    register_checker,
    registered_rules,
    run_lint,
    unregister_checker,
    write_baseline,
)

__all__ = [
    "Checker",
    "Finding",
    "LintError",
    "LintReport",
    "ModuleInfo",
    "REPORT_VERSION",
    "checker_descriptions",
    "load_baseline",
    "register_checker",
    "registered_rules",
    "run_lint",
    "unregister_checker",
    "write_baseline",
]
