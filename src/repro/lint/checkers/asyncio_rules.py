"""Rule ``asyncio`` — no blocking calls on the event loop.

The async service core (PR 8) runs framing, routing and coalescing on
one event loop; anything that blocks inside an ``async def`` stalls
*every* connection, not just its own — a busy shard stops answering
pings, deadlines fire late, and the multiplexing win evaporates.  The
convention is mechanical, so it is machine-checked:

* no ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* no raw socket calls (``recv``/``recv_into``/``recvfrom``/``accept``/
  ``sendall``, ``socket.create_connection``) — stream readers/writers
  only;
* no un-awaited ``.request(...)`` / ``.request_many(...)`` /
  ``.ping(...)`` — calling a *sync* ``Transport`` from a coroutine
  blocks the loop on network I/O (the bridge exists for the opposite
  direction);
* no ``.result()`` — a ``concurrent.futures`` wait parks the loop;
  hand the future to ``asyncio.wrap_future`` or await the executor;
* no sync ``with <...lock...>:`` — an engine/state lock held across a
  blocking acquire convoys the loop; engine locks belong *inside*
  executor jobs, loop-confined state needs no lock at all
  (``async with`` on an ``asyncio.Lock`` is of course fine).

Nested sync ``def``/``lambda`` bodies are exempt — they are exactly
the functions handed to executors — and the deliberate exceptions
carry ``allow(asyncio)`` pragmas.

Scope: the service layer (``repro/service/``) and any file opting in
via ``scope(asyncio)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import Checker, Finding, ModuleInfo, register_checker

_SCOPE_DIRS = ("repro/service/",)
_SOCKET_METHODS = frozenset(
    {"recv", "recv_into", "recvfrom", "accept", "sendall"})
_TRANSPORT_METHODS = frozenset({"request", "request_many", "ping"})


def _iter_async_body(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without crossing into nested functions —
    a nested sync ``def`` runs on an executor thread, not the loop."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _terminal_name(expr: ast.AST) -> str:
    """The rightmost identifier of a context expression."""
    if isinstance(expr, ast.Call):
        expr = expr.func
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return ""


@register_checker
class AsyncioChecker(Checker):
    rule = "asyncio"
    description = (
        "async def bodies in repro/service/ must not block the event "
        "loop: no time.sleep, raw socket calls, un-awaited sync "
        "Transport request/ping, Future.result(), or sync 'with' on a "
        "lock (engine locks belong inside executor jobs)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        q = "/" + module.display_path
        return (any("/" + d in q for d in _SCOPE_DIRS)
                or module.scoped(self.rule))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for outer in ast.walk(module.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            awaited: Set[int] = set()
            for node in _iter_async_body(outer):
                if isinstance(node, ast.Await):
                    awaited.add(id(node.value))
            for node in _iter_async_body(outer):
                yield from self._check_node(module, outer, node, awaited)

    def _check_node(self, module: ModuleInfo, outer: ast.AsyncFunctionDef,
                    node: ast.AST, awaited: Set[int]) -> Iterator[Finding]:
        where = f"in async def {outer.name}"
        if isinstance(node, ast.With):
            for item in node.items:
                name = _terminal_name(item.context_expr)
                if "lock" in name.lower():
                    yield Finding(
                        self.rule, module.display_path, node.lineno,
                        node.col_offset,
                        f"sync 'with {name}:' {where} blocks the event "
                        f"loop on acquire (take engine locks inside "
                        f"executor jobs; asyncio.Lock wants 'async with')",
                    )
            return
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            if func.value.id == "time" and func.attr == "sleep":
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f"time.sleep() {where} stalls every connection on "
                    f"the loop; use 'await asyncio.sleep(...)'",
                )
                return
            if func.value.id == "socket" and func.attr == "create_connection":
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f"socket.create_connection() {where} blocks the "
                    f"loop; use 'await asyncio.open_connection(...)'",
                )
                return
        if isinstance(func, ast.Attribute):
            if func.attr in _SOCKET_METHODS:
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f".{func.attr}() {where} is a blocking socket call; "
                    f"use the connection's StreamReader/StreamWriter",
                )
            elif (func.attr in _TRANSPORT_METHODS
                    and id(node) not in awaited):
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f"un-awaited .{func.attr}() {where}: a sync "
                    f"Transport call blocks the loop on network I/O "
                    f"(await the async transport instead)",
                )
            elif func.attr == "result" and id(node) not in awaited:
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f".result() {where} parks the loop until the future "
                    f"resolves; await it (asyncio.wrap_future for "
                    f"concurrent.futures)",
                )
