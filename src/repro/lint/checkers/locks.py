"""Rule ``locks`` — ``# guarded-by:`` attributes touched under lock only.

The service layer's shared mutable state (caches, in-flight maps, shard
health counters, trace rings) is protected by per-object locks whose
coverage used to live in comments and reviewer memory — the race class
PRs 3 and 5 fixed by hand.  This rule makes the comments enforceable:

    self._entries = OrderedDict()  # guarded-by: _lock

declares that every load or store of ``self._entries`` elsewhere in the
class must sit lexically inside a ``with self._lock:`` block.
``__init__`` is exempt (the object is not yet shared), nested
functions/lambdas reset the held-lock set (they run later, when the
lock may no longer be held), and base classes defined in the same
module contribute their declarations to subclasses.  Deliberately
unlocked accesses (GIL-atomic counter reads in snapshots, single-
threaded shutdown paths) carry a line ``allow(locks)`` pragma with the
justification.

Private helpers that a lock-holding method factors its work into (the
heat sketch's lazy-heap eviction, for example) are declared with a
method-level annotation on the ``def`` line::

    def _evict_min(self):  # caller-holds: _lock

The helper's body is then checked as if ``with self._lock:`` enclosed
it — guarded attributes may be touched freely — and, in exchange,
**every call** ``self._evict_min()`` elsewhere in the class must itself
sit inside a ``with self._lock:`` block (or another method making the
same declaration).  The annotation moves the obligation to the call
site instead of silencing it.

Known model limits (documented, not checked): attributes guarded by a
*different object's* lock (e.g. shard failure counters mutated under
the owning broker's health lock) and locks acquired with explicit
``acquire``/``release`` instead of ``with``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Checker, Finding, ModuleInfo, register_checker

_GUARD_RE = re.compile(r"guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_CALLER_HOLDS_RE = re.compile(r"caller-holds:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Methods where unlocked access is allowed by construction.
_EXEMPT_METHODS = frozenset({"__init__", "__new__"})


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` attribute name, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _ClassInfo:
    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.bases: List[str] = [
            b.id for b in node.bases if isinstance(b, ast.Name)
        ]
        self.guards: Dict[str, str] = {}  # attr -> lock attr
        self.caller_holds: Dict[str, str] = {}  # method -> lock attr


@register_checker
class LockChecker(Checker):
    rule = "locks"
    description = (
        "attributes annotated '# guarded-by: <lock>' may only be "
        "read/written inside a 'with self.<lock>:' block of the "
        "enclosing class (construction in __init__ exempt)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return "guarded-by" in module.source

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        guard_lines: Dict[int, str] = {}
        holds_lines: Dict[int, str] = {}
        for line, _col, text in module.comments:
            match = _GUARD_RE.search(text)
            if match:
                guard_lines[line] = match.group(1)
            match = _CALLER_HOLDS_RE.search(text)
            if match:
                holds_lines[line] = match.group(1)
        if not guard_lines and not holds_lines:
            return

        classes: Dict[str, _ClassInfo] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _ClassInfo(node)

        holds_claimed: Set[int] = set()
        for info in classes.values():
            for item in info.node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                # the annotation may sit on any line of the def header
                # (signatures wrap); the body's first line ends it
                header_end = (item.body[0].lineno if item.body
                              else item.lineno + 1)
                for ln in range(item.lineno, header_end):
                    if ln in holds_lines:
                        info.caller_holds[item.name] = holds_lines[ln]
                        holds_claimed.add(ln)
                        break
        for line in sorted(set(holds_lines) - holds_claimed):
            yield Finding(
                self.rule, module.display_path, line, 0,
                "dangling caller-holds annotation (not on a method's "
                "'def' header)",
            )

        claimed: Set[int] = set()
        for info in classes.values():
            for stmt in ast.walk(info.node):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                span = range(stmt.lineno,
                             (stmt.end_lineno or stmt.lineno) + 1)
                lock = next((guard_lines[ln] for ln in span
                             if ln in guard_lines), None)
                if lock is None:
                    continue
                for target in targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        info.guards[attr] = lock
                        claimed.update(ln for ln in span
                                       if ln in guard_lines)

        for line, lock in sorted(guard_lines.items()):
            if line not in claimed:
                yield Finding(
                    self.rule, module.display_path, line, 0,
                    f"dangling guarded-by annotation (no 'self.<attr> = "
                    f"...' assignment on this line declares it)",
                )

        for name, info in classes.items():
            effective = self._effective_guards(name, classes, set())
            holds = self._effective_caller_holds(name, classes, set())
            if not effective and not holds:
                continue
            for item in info.node.body:
                if not isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if item.name in _EXEMPT_METHODS:
                    continue
                yield from self._check_method(
                    module, name, item, effective, holds)

    def _effective_guards(
        self, name: str, classes: Dict[str, _ClassInfo], seen: Set[str]
    ) -> Dict[str, str]:
        if name in seen or name not in classes:
            return {}
        seen.add(name)
        info = classes[name]
        merged: Dict[str, str] = {}
        for base in info.bases:
            merged.update(self._effective_guards(base, classes, seen))
        merged.update(info.guards)
        return merged

    def _effective_caller_holds(
        self, name: str, classes: Dict[str, _ClassInfo], seen: Set[str]
    ) -> Dict[str, str]:
        if name in seen or name not in classes:
            return {}
        seen.add(name)
        info = classes[name]
        merged: Dict[str, str] = {}
        for base in info.bases:
            merged.update(self._effective_caller_holds(base, classes, seen))
        merged.update(info.caller_holds)
        return merged

    def _check_method(
        self, module: ModuleInfo, cls_name: str,
        method: ast.AST, guards: Dict[str, str],
        caller_holds: Dict[str, str],
    ) -> Iterator[Finding]:
        method_name = method.name  # type: ignore[attr-defined]

        def walk(node: ast.AST, held: Set[str]) -> Iterator[Finding]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired: Set[str] = set()
                for item in node.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None:
                        acquired.add(attr)
                    yield from walk(item.context_expr, held)
                    if item.optional_vars is not None:
                        yield from walk(item.optional_vars, held)
                inner = held | acquired
                for stmt in node.body:
                    yield from walk(stmt, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                # a nested callable runs later; locks held at definition
                # time are not held at call time
                for child in ast.iter_child_nodes(node):
                    yield from walk(child, set())
                return
            if isinstance(node, ast.Call):
                callee = _self_attr(node.func)
                if callee is not None and callee in caller_holds:
                    lock = caller_holds[callee]
                    if lock not in held:
                        yield Finding(
                            self.rule, module.display_path, node.lineno,
                            node.col_offset,
                            f"self.{callee}() called without holding "
                            f"'with self.{lock}:' in "
                            f"{cls_name}.{method_name} "
                            f"(caller-holds: {lock})",
                        )
            attr = _self_attr(node)
            if attr is not None and attr in guards:
                lock = guards[attr]
                if lock not in held:
                    yield Finding(
                        self.rule, module.display_path, node.lineno,
                        node.col_offset,
                        f"self.{attr} accessed outside 'with "
                        f"self.{lock}:' in {cls_name}.{method_name} "
                        f"(guarded-by: {lock})",
                    )
            for child in ast.iter_child_nodes(node):
                yield from walk(child, held)

        # a caller-holds method runs with its declared lock already
        # held — its body is checked as if the with-block enclosed it
        initial: Set[str] = set()
        if method_name in caller_holds:
            initial.add(caller_holds[method_name])
        for stmt in method.body:  # type: ignore[attr-defined]
            yield from walk(stmt, initial)
