"""Built-in checkers; importing this package registers them all."""

from . import drift, exactness, locks, tracing  # noqa: F401

__all__ = ["drift", "exactness", "locks", "tracing"]
