"""Built-in checkers; importing this package registers them all."""

from . import asyncio_rules, drift, exactness, locks, tracing  # noqa: F401

__all__ = ["asyncio_rules", "drift", "exactness", "locks", "tracing"]
