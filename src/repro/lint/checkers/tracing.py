"""Rule ``tracing`` — context-managed spans, one monotonic clock.

The tracing layer (PR 6) keeps every span on one monotonic clock per
trace so cross-process grafting can re-base offsets exactly; span
lifetimes are managed by context managers so an exception can never
leave a span dangling open.  Two things quietly break that:

* calling ``span(...)`` / ``start_trace(...)`` outside a ``with``
  statement — the span is opened (or worse, never finished) without
  the exception-safe closer.  The manual ``trace.new_span(...)`` /
  ``.finish()`` API is exempt: it exists precisely for the hand-off
  points (coalescing followers) that cannot use ``with``.
* ``time.time()`` in traced code — wall clock, not the trace's
  monotonic clock; NTP steps would corrupt span math.  The deliberate
  wall-clock uses (human-facing trace timestamps, event-log records)
  carry ``allow(tracing)`` pragmas.

Scope: the service layer (``repro/service/``), the warm path's LP
driver (``repro/lp/``), and any file opting in via ``scope(tracing)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..engine import Checker, Finding, ModuleInfo, register_checker

_SCOPE_DIRS = ("repro/service/", "repro/lp/")
_CONTEXT_FACTORIES = frozenset({"span", "start_trace"})


@register_checker
class TracingChecker(Checker):
    rule = "tracing"
    description = (
        "span()/start_trace() must be opened as 'with' context "
        "managers, and traced paths (repro/service/, repro/lp/) must "
        "not call time.time() (one monotonic clock per trace)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        q = "/" + module.display_path
        return (any("/" + d in q for d in _SCOPE_DIRS)
                or module.scoped(self.rule))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        # which of the factory names are actually the tracing ones here?
        imported: Set[str] = set()
        defined: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.split(".")[-1] == "tracing":
                    for alias in node.names:
                        if alias.name in _CONTEXT_FACTORIES:
                            imported.add(alias.asname or alias.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in _CONTEXT_FACTORIES:
                    defined.add(node.name)
        # a module *defining* span()/start_trace() (tracing.py itself,
        # fixtures) gets its local calls checked too
        factory_names = imported | defined

        with_contexts: Set[int] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id in factory_names
                    and id(node) not in with_contexts):
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f"{node.func.id}(...) opened outside a 'with' "
                    f"statement (spans must be context-managed)",
                )
            elif (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "time"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "time"):
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    "time.time() in a traced path (wall clock; use "
                    "time.perf_counter()/monotonic() — one monotonic "
                    "clock per trace)",
                )
