"""Rule ``drift`` — wire codecs and the problem registry stay in sync.

Two codecs can silently fall out of step with the dataclasses they
serialise: :func:`repro.service.wire.solution_to_wire` /
``solution_from_wire`` (hand-written per-kind branches) and the
registry's capability declarations.  A field added to a solution
dataclass but not its codec branch travels the shard wire as silence
and resurfaces as a wrong answer on another host.  This rule checks:

* **statically** (works on fixture files too): for every ``kind`` the
  encoder's dict-literal keys (plus conditional ``out["k"] = ...``
  additions) must equal the decoder's constructor keyword names, and
  every kind must appear on both sides;
* **dynamically** (only when the real ``repro/service/wire.py`` is in
  the checked set): the per-kind key set must equal the solution
  dataclass's field set, every spec dataclass declaring a ``problem``
  must be registered with an example factory, role fields
  (``_SOURCE_FIELD``/``_TARGETS_FIELD``) must name real fields, and
  every solver declaring ``warm_resolve`` must bind a ``WarmModel``.

The dynamic twin — actually encoding/decoding every registered spec
and solution — lives in ``tests/test_wire_roundtrip.py``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine import Checker, Finding, ModuleInfo, register_checker

_REAL_WIRE_SUFFIX = "repro/service/wire.py"


class _EncoderBranch:
    def __init__(self, kind: str, cls_name: Optional[str], line: int) -> None:
        self.kind = kind
        self.cls_name = cls_name
        self.line = line
        self.keys: Set[str] = set()
        self.optional_keys: Set[str] = set()
        self.delegated = False


class _DecoderBranch:
    def __init__(self, kind: str, line: int) -> None:
        self.kind = kind
        self.line = line
        self.cls_name: Optional[str] = None
        self.kwargs: Set[str] = set()
        self.delegated = False


def _isinstance_class(test: ast.AST) -> Optional[str]:
    if (isinstance(test, ast.Call) and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance" and len(test.args) == 2
            and isinstance(test.args[1], ast.Name)):
        return test.args[1].id
    return None


def _kind_compare(test: ast.AST) -> Optional[str]:
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Name)
            and test.left.id == "kind"
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)):
        return test.comparators[0].value
    return None


def _dict_branch(dict_node: ast.Dict) -> Tuple[Optional[str], Set[str], bool]:
    """(kind, non-kind literal keys, has-**-delegation)."""
    kind = None
    keys: Set[str] = set()
    delegated = False
    for key_node, value_node in zip(dict_node.keys, dict_node.values):
        if key_node is None:
            delegated = True
            continue
        if not (isinstance(key_node, ast.Constant)
                and isinstance(key_node.value, str)):
            continue
        if key_node.value == "kind":
            if (isinstance(value_node, ast.Constant)
                    and isinstance(value_node.value, str)):
                kind = value_node.value
            continue
        keys.add(key_node.value)
    return kind, keys, delegated


def _parse_encoder(func: ast.FunctionDef) -> List[_EncoderBranch]:
    branches: List[_EncoderBranch] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        cls_name = _isinstance_class(node.test)
        if cls_name is None:
            continue
        # direct `return {...}` or `out = {...}` + `out["k"] = ...` +
        # `return out`
        dict_node: Optional[ast.Dict] = None
        out_name: Optional[str] = None
        for stmt in node.body:
            if (isinstance(stmt, ast.Return)
                    and isinstance(stmt.value, ast.Dict)):
                dict_node = stmt.value
                break
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Dict)):
                dict_node = stmt.value
                out_name = stmt.targets[0].id
                break
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and isinstance(stmt.value, ast.Dict)):
                dict_node = stmt.value
                out_name = stmt.target.id
                break
        if dict_node is None:
            continue
        kind, keys, delegated = _dict_branch(dict_node)
        if kind is None:
            continue
        branch = _EncoderBranch(kind, cls_name, node.lineno)
        branch.keys = keys
        branch.delegated = delegated
        if out_name is not None:
            for sub in ast.walk(node):
                if (isinstance(sub, ast.Assign) and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Subscript)
                        and isinstance(sub.targets[0].value, ast.Name)
                        and sub.targets[0].value.id == out_name
                        and isinstance(sub.targets[0].slice, ast.Constant)
                        and isinstance(sub.targets[0].slice.value, str)):
                    branch.optional_keys.add(sub.targets[0].slice.value)
        branches.append(branch)
    return branches


def _parse_decoder(func: ast.FunctionDef) -> List[_DecoderBranch]:
    branches: List[_DecoderBranch] = []
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        kind = _kind_compare(node.test)
        if kind is None:
            continue
        branch = _DecoderBranch(kind, node.lineno)
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Return)
                    and isinstance(sub.value, ast.Call)
                    and isinstance(sub.value.func, ast.Name)):
                name = sub.value.func.id
                kwargs = {kw.arg for kw in sub.value.keywords
                          if kw.arg is not None}
                if kwargs and name[:1].isupper():
                    branch.cls_name = name
                    branch.kwargs = kwargs
                else:
                    branch.delegated = True
                break
        if branch.cls_name is not None or branch.delegated:
            branches.append(branch)
    return branches


@register_checker
class DriftChecker(Checker):
    rule = "drift"
    description = (
        "solution wire codec branches must agree with each other and "
        "with the dataclass field sets; registry capabilities must be "
        "coherent (warm_resolve binds a WarmModel, specs registered "
        "with examples, role fields exist)"
    )

    def __init__(self) -> None:
        self._saw_real_wire = False
        self._real_encoder: List[_EncoderBranch] = []
        self._real_decoder: List[_DecoderBranch] = []
        self._real_path = ""

    def applies_to(self, module: ModuleInfo) -> bool:
        return ("/" + module.display_path).endswith(
            "/" + _REAL_WIRE_SUFFIX) or module.scoped(self.rule)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        encoder: List[_EncoderBranch] = []
        decoder: List[_DecoderBranch] = []
        for node in module.tree.body:
            if isinstance(node, ast.FunctionDef):
                if node.name == "solution_to_wire":
                    encoder = _parse_encoder(node)
                elif node.name == "solution_from_wire":
                    decoder = _parse_decoder(node)
        if ("/" + module.display_path).endswith("/" + _REAL_WIRE_SUFFIX):
            self._saw_real_wire = True
            self._real_encoder = encoder
            self._real_decoder = decoder
            self._real_path = module.display_path
        yield from self._static_cross_check(module.display_path,
                                            encoder, decoder)

    def _static_cross_check(
        self, path: str,
        encoder: List[_EncoderBranch], decoder: List[_DecoderBranch],
    ) -> Iterator[Finding]:
        enc = {b.kind: b for b in encoder}
        dec = {b.kind: b for b in decoder}
        for kind in sorted(set(enc) - set(dec)):
            yield Finding(self.rule, path, enc[kind].line, 0,
                          f"solution kind {kind!r} is encoded but has no "
                          f"decoder branch in solution_from_wire")
        for kind in sorted(set(dec) - set(enc)):
            yield Finding(self.rule, path, dec[kind].line, 0,
                          f"solution kind {kind!r} is decoded but has no "
                          f"encoder branch in solution_to_wire")
        for kind in sorted(set(enc) & set(dec)):
            e, d = enc[kind], dec[kind]
            if e.delegated or d.delegated:
                if e.delegated != d.delegated:
                    yield Finding(
                        self.rule, path, e.line, 0,
                        f"solution kind {kind!r}: one side delegates to a "
                        f"helper codec, the other spells fields — keep "
                        f"both sides symmetric")
                continue
            enc_keys = e.keys | e.optional_keys
            missing = sorted(enc_keys - d.kwargs)
            extra = sorted(d.kwargs - enc_keys)
            if missing or extra:
                detail = []
                if missing:
                    detail.append(f"encoded but not decoded: "
                                  f"{', '.join(missing)}")
                if extra:
                    detail.append(f"decoded but never encoded: "
                                  f"{', '.join(extra)}")
                yield Finding(
                    self.rule, path, d.line, 0,
                    f"solution kind {kind!r} codec drift — "
                    + "; ".join(detail))

    # ------------------------------------------------------------------
    # dynamic repo-level checks (real wire.py only)
    # ------------------------------------------------------------------
    def finalize(self) -> Iterator[Finding]:
        if not self._saw_real_wire:
            return
        try:
            import repro.problems.catalog  # noqa: F401 — registrations
            import repro.problems.specs as specs_mod
            import repro.service.wire as wire_mod
            from repro.problems.registry import (registered_problems,
                                                 resolve)
        except Exception as exc:  # pragma: no cover — import env broken
            yield Finding(
                self.rule, self._real_path, 1, 0,
                f"cannot import repro for registry drift checks: {exc}")
            return

        # encoder/decoder field sets vs the solution dataclasses
        dec_cls = {b.kind: b.cls_name for b in self._real_decoder
                   if b.cls_name}
        for branch in self._real_encoder:
            if branch.delegated:
                continue
            cls_name = branch.cls_name or dec_cls.get(branch.kind)
            cls = getattr(wire_mod, cls_name, None) if cls_name else None
            if cls is None or not dataclasses.is_dataclass(cls):
                yield Finding(
                    self.rule, self._real_path, branch.line, 0,
                    f"solution kind {branch.kind!r}: cannot resolve "
                    f"dataclass {cls_name!r} in repro.service.wire")
                continue
            field_names = {f.name for f in dataclasses.fields(cls)}
            wire_keys = branch.keys | branch.optional_keys
            missing = sorted(field_names - wire_keys)
            extra = sorted(wire_keys - field_names)
            if missing or extra:
                detail = []
                if missing:
                    detail.append(f"dataclass fields never encoded: "
                                  f"{', '.join(missing)}")
                if extra:
                    detail.append(f"wire keys with no dataclass field: "
                                  f"{', '.join(extra)}")
                yield Finding(
                    self.rule, self._real_path, branch.line, 0,
                    f"solution kind {branch.kind!r} vs {cls_name}: "
                    + "; ".join(detail))

        # registry coherence
        registered_specs = set()
        for problem in registered_problems():
            entry = resolve(problem)
            registered_specs.add(entry.spec_type)
            if entry.capabilities.warm_resolve and entry.warm_model is None:
                yield Finding(
                    self.rule, self._real_path, 1, 0,
                    f"problem {problem!r} declares warm_resolve but "
                    f"binds no WarmModel")
            if (entry.warm_model is not None
                    and not entry.capabilities.warm_resolve):
                yield Finding(
                    self.rule, self._real_path, 1, 0,
                    f"problem {problem!r} binds a WarmModel but does "
                    f"not declare warm_resolve")
            if entry.example is None:
                yield Finding(
                    self.rule, self._real_path, 1, 0,
                    f"problem {problem!r} registers no example factory "
                    f"(the registry --check gate cannot exercise it)")
            spec_type = entry.spec_type
            names = {f.name for f in dataclasses.fields(spec_type)}
            for role_attr in ("_SOURCE_FIELD", "_TARGETS_FIELD"):
                role = getattr(spec_type, role_attr, None)
                if role is not None and role not in names:
                    yield Finding(
                        self.rule, self._real_path, 1, 0,
                        f"spec {spec_type.__name__}: {role_attr}="
                        f"{role!r} names no dataclass field")

        # every spec dataclass declaring a problem must be registered
        base = specs_mod.ProblemSpec
        for name in dir(specs_mod):
            obj = getattr(specs_mod, name)
            if (isinstance(obj, type) and issubclass(obj, base)
                    and obj is not base and getattr(obj, "problem", "")
                    and obj not in registered_specs):
                yield Finding(
                    self.rule, self._real_path, 1, 0,
                    f"spec {obj.__name__} (problem "
                    f"{obj.problem!r}) is defined but never registered")
