"""Rule ``exactness`` — no float arithmetic in the exact LP paths.

The reproduction's headline guarantee is that every result is
``Fraction``-identical across warm restarts, shards and hosts.  A
single float literal, ``float()`` coercion or ``math.*`` call inside
the exact pipeline silently breaks that: the benchmark exactness
assertions only catch the divergences their inputs happen to excite.
This rule bans the float surface outright in the declared exact paths;
``lp/scipy_backend.py`` is exempt as the declared float backend, and
deliberate float use (operational metadata, documented float-backed
approximations) carries an ``allow(exactness)`` pragma with its
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Checker, Finding, ModuleInfo, register_checker

#: Exact-path files (suffix match on the repo-relative path).
EXACT_FILES = (
    "repro/lp/simplex.py",
    "repro/lp/factor.py",
    "repro/lp/model.py",
    "repro/service/wire.py",
)

#: Exact-path directories (segment match).
EXACT_DIRS = (
    "repro/core/",
    "repro/schedule/",
    "repro/problems/",
)

#: The declared float backend — never checked.
EXEMPT_FILES = ("repro/lp/scipy_backend.py",)


def _in_exact_path(display_path: str) -> bool:
    q = "/" + display_path
    if any(q.endswith("/" + f) for f in EXEMPT_FILES):
        return False
    if any(q.endswith("/" + f) for f in EXACT_FILES):
        return True
    return any("/" + d in q for d in EXACT_DIRS)


@register_checker
class ExactnessChecker(Checker):
    rule = "exactness"
    description = (
        "no float literals, float() calls or math.* in the exact paths "
        "(lp/simplex.py, lp/factor.py, lp/model.py, core/, schedule/, "
        "problems/, service/wire.py; lp/scipy_backend.py exempt)"
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return _in_exact_path(module.display_path) or module.scoped(self.rule)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Constant) and isinstance(
                    node.value, (float, complex)):
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f"float literal {node.value!r} in exact path "
                    f"(use Fraction)",
                )
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"):
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    "float() coercion in exact path (use Fraction)",
                )
            elif (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "math"):
                yield Finding(
                    self.rule, module.display_path, node.lineno,
                    node.col_offset,
                    f"math.{node.attr} in exact path (float math; use "
                    f"exact integer/Fraction arithmetic)",
                )
