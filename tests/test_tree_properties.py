"""Hypothesis property tests for arborescence packing and broadcast."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.broadcast import broadcast_lp_bound, solve_broadcast
from repro.core.trees import (
    enumerate_arborescences,
    pack_trees,
    tree_recv_time,
    tree_send_time,
    tree_throughput,
)
from repro.platform import generators as gen

SLOW = dict(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_broadcast_platform(draw):
    n = draw(st.integers(min_value=3, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=5000))
    return gen.random_connected(
        n, seed=seed, extra_edge_prob=draw(st.sampled_from([0.0, 0.2]))
    )


class TestPackingProperties:
    @settings(**SLOW)
    @given(small_broadcast_platform())
    def test_trees_are_arborescences(self, platform):
        trees = enumerate_arborescences(platform, "R0", limit=20_000)
        nodes = set(platform.nodes()) - {"R0"}
        for tree in trees[:50]:
            heads = [v for (_, v) in tree]
            assert len(heads) == len(set(heads))
            assert set(heads) == nodes

    @settings(**SLOW)
    @given(small_broadcast_platform())
    def test_packing_beats_every_single_tree(self, platform):
        trees = enumerate_arborescences(platform, "R0", limit=20_000)
        if not trees or not trees[0]:
            return
        tp, _ = pack_trees(platform, trees)
        best_single = max(tree_throughput(platform, t) for t in trees)
        assert tp >= best_single

    @settings(**SLOW)
    @given(small_broadcast_platform())
    def test_broadcast_achievability_property(self, platform):
        """[5]'s theorem as a universally quantified property."""
        sol = solve_broadcast(platform, "R0", tree_limit=20_000)
        if sol.exhaustive:
            assert sol.achieved == sol.lp_bound

    @settings(**SLOW)
    @given(small_broadcast_platform())
    def test_packing_port_feasibility(self, platform):
        sol = solve_broadcast(platform, "R0", tree_limit=20_000)
        send_busy = {}
        recv_busy = {}
        for tree, rate in sol.packing.items():
            for node, t in tree_send_time(platform, tree).items():
                send_busy[node] = send_busy.get(node, Fraction(0)) + rate * t
            for node, t in tree_recv_time(platform, tree).items():
                recv_busy[node] = recv_busy.get(node, Fraction(0)) + rate * t
        assert all(v <= 1 for v in send_busy.values())
        assert all(v <= 1 for v in recv_busy.values())
