"""Baseline scheduler tests: the 'why' comparison of the paper's intro."""

from fractions import Fraction

import pytest

from repro.baselines.greedy import (
    run_demand_driven,
    spanning_tree_children,
)
from repro.baselines.list_scheduling import (
    eft_star_makespan,
    makespan_comparison,
    steady_state_batch_makespan,
)
from repro.core.master_slave import ntask
from repro.platform import generators as gen


class TestSpanningTree:
    def test_star_recovers_itself(self, star4):
        tree = spanning_tree_children(star4, "M")
        assert sorted(tree["M"]) == ["W1", "W2", "W3", "W4"]

    def test_grid_tree_is_spanning(self, grid33):
        tree = spanning_tree_children(grid33, "G0_0")
        covered = set(tree)
        assert covered == set(grid33.nodes())
        # every non-root appears exactly once as a child
        children = [c for cs in tree.values() for c in cs]
        assert len(children) == len(set(children)) == grid33.num_nodes - 1


class TestDemandDriven:
    def test_trace_is_one_port(self, star4):
        res = run_demand_driven(star4, "M", horizon=120, policy="bandwidth")
        res.trace.validate("one-port")
        res.trace.check_matched_transfers()

    def test_bandwidth_near_lp_on_star(self, star4):
        lp = ntask(star4, "M")
        res = run_demand_driven(star4, "M", horizon=400, policy="bandwidth")
        assert res.rate <= lp
        assert float(res.rate) >= 0.95 * float(lp)

    def test_bandwidth_near_lp_on_tree(self, tree3):
        lp = ntask(tree3, "T0")
        res = run_demand_driven(tree3, "T0", horizon=600, policy="bandwidth")
        assert res.rate <= lp
        assert float(res.rate) >= 0.93 * float(lp)

    def test_round_robin_strictly_worse(self, star4):
        """Blind rotation wastes the master's port on expensive links."""
        bw = run_demand_driven(star4, "M", horizon=400, policy="bandwidth")
        rr = run_demand_driven(star4, "M", horizon=400, policy="round-robin")
        assert rr.rate < bw.rate

    def test_policies_never_beat_lp(self, any_platform):
        name, platform, master = any_platform
        lp = ntask(platform, master)
        for policy in ("bandwidth", "fastest", "round-robin"):
            res = run_demand_driven(platform, master, horizon=150,
                                    policy=policy)
            assert res.rate <= lp, f"{policy} exceeded the LP bound"

    def test_unknown_policy(self, star4):
        with pytest.raises(ValueError):
            run_demand_driven(star4, "M", horizon=10, policy="magic")

    def test_completions_counted_per_node(self, star4):
        res = run_demand_driven(star4, "M", horizon=100, policy="bandwidth")
        assert res.total_completed == sum(res.completed.values())
        assert res.completed["M"] > 0  # the master computes too

    def test_zero_horizon(self, star4):
        res = run_demand_driven(star4, "M", horizon=0, policy="bandwidth")
        assert res.total_completed == 0


class TestEFT:
    def test_zero_tasks(self, star4):
        assert eft_star_makespan(star4, "M", 0).makespan == 0

    def test_single_task_goes_to_fastest_finisher(self, star4):
        res = eft_star_makespan(star4, "M", 1)
        # W1: c=1 + w=1 = 2 beats master w=2? equal; EFT prefers master
        # (first candidate); either way makespan is 2
        assert res.makespan == 2

    def test_makespan_monotone_in_n(self, star4):
        m1 = eft_star_makespan(star4, "M", 10).makespan
        m2 = eft_star_makespan(star4, "M", 20).makespan
        assert m2 >= m1

    def test_makespan_at_least_lower_bound(self, star4):
        lp = ntask(star4, "M")
        for n in (5, 17, 40):
            res = eft_star_makespan(star4, "M", n)
            assert res.makespan >= Fraction(n) / lp

    def test_counts_add_up(self, star4):
        res = eft_star_makespan(star4, "M", 23)
        assert sum(res.per_node.values()) == 23


class TestSteadyStateBatch:
    def test_batch_makespan_near_bound(self, star4):
        lp = ntask(star4, "M")
        res = steady_state_batch_makespan(star4, "M", 300)
        bound = Fraction(300) / lp
        assert res.makespan >= bound
        assert float(res.makespan) <= 1.15 * float(bound)

    def test_comparison_rows(self, star4):
        rows = makespan_comparison(star4, "M", [10, 80])
        assert len(rows) == 2
        for n, eft, ss, lb in rows:
            assert eft >= lb and ss >= lb

    def test_steady_state_competitive_for_large_batches(self, star4):
        """Asymptotically the periodic schedule matches EFT (both near the
        bound) — the paper's 'two hours three minutes' argument."""
        rows = makespan_comparison(star4, "M", [400])
        n, eft, ss, lb = rows[0]
        assert float(ss) <= 1.1 * float(eft)
