"""Closed-form bound tests: every bound dominates the LP optimum."""

from fractions import Fraction

import pytest

from repro.core.master_slave import ntask
from repro.core.throughput_bounds import (
    best_cut_bound,
    bound_envelope,
    cpu_capacity_bound,
    cut_bound,
    master_port_bound,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError


class TestBoundsDominate:
    def test_all_bounds_dominate_lp(self, any_platform):
        name, platform, master = any_platform
        lp = ntask(platform, master)
        env = bound_envelope(platform, master)
        for label, bound in env.items():
            assert lp <= bound, f"{label} on {name}"

    def test_cpu_bound_tight_when_comm_free(self):
        """With ultra-cheap links the CPU capacity is the binding bound."""
        g = gen.star(3, master_w=2, worker_w=[1, 2, 4],
                     link_c=[Fraction(1, 100)] * 3)
        assert ntask(g, "M") == cpu_capacity_bound(g)

    def test_master_cut_tight_on_stars(self, star4):
        """On the star the {master} cut is exactly the LP optimum."""
        assert ntask(star4, "M") == cut_bound(star4, {"M"}, "M")

    def test_master_port_bound_value(self, star4):
        # master rate 1/2 + cheapest link c=1 -> 1 export/unit
        assert master_port_bound(star4, "M") == Fraction(3, 2)

    def test_cut_requires_master(self, star4):
        with pytest.raises(PlatformError):
            cut_bound(star4, {"W1"}, "M")

    def test_best_cut_refuses_large_platforms(self):
        g = gen.random_connected(14, seed=1)
        with pytest.raises(PlatformError):
            best_cut_bound(g, "R0", max_nodes=12)

    def test_best_cut_at_most_single_cut(self, star4):
        assert best_cut_bound(star4, "M") <= cut_bound(star4, {"M"}, "M")

    def test_isolated_master(self):
        g = Platform("solo")
        g.add_node("M", 4)
        assert master_port_bound(g, "M") == Fraction(1, 4)
        assert cut_bound(g, {"M"}, "M") == Fraction(1, 4)

    def test_forwarder_master_bound(self):
        from repro._rational import INF

        g = Platform("fw")
        g.add_node("M", INF)
        g.add_node("W", 1)
        g.add_edge("M", "W", 2)
        assert master_port_bound(g, "M") == Fraction(1, 2)
        assert ntask(g, "M") == Fraction(1, 2)  # the bound is tight here
