"""SteadyStateSolution unit tests: rates, periods, simplification."""

from fractions import Fraction

import pytest

from repro._rational import INF
from repro.core.activities import SteadyStateError, SteadyStateSolution
from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.platform.graph import Platform


def tiny():
    g = Platform("tiny")
    g.add_node("M", 1)
    g.add_node("W", 2)
    g.add_edge("M", "W", 3)
    return g


class TestRates:
    def test_compute_rate(self):
        g = tiny()
        sol = SteadyStateSolution(
            platform=g, problem="master-slave", throughput=Fraction(0),
            alpha={"W": Fraction(1, 2)}, source="M",
        )
        assert sol.compute_rate("W") == Fraction(1, 4)
        assert sol.compute_rate("M") == 0

    def test_forwarder_alpha_rejected(self):
        g = Platform("f")
        g.add_node("M", 1)
        g.add_node("F", INF)
        g.add_edge("M", "F", 1)
        sol = SteadyStateSolution(
            platform=g, problem="master-slave", throughput=Fraction(0),
            alpha={"F": Fraction(1)}, source="M",
        )
        with pytest.raises(SteadyStateError):
            sol.compute_rate("F")

    def test_edge_rate(self):
        g = tiny()
        sol = SteadyStateSolution(
            platform=g, problem="master-slave", throughput=Fraction(0),
            s={("M", "W"): Fraction(1, 2)}, source="M",
        )
        assert sol.edge_rate("M", "W") == Fraction(1, 6)

    def test_activity_on_missing_edge_caught(self):
        g = tiny()
        sol = SteadyStateSolution(
            platform=g, problem="master-slave", throughput=Fraction(0),
            s={("W", "M"): Fraction(1, 2)}, source="M",
        )
        with pytest.raises(SteadyStateError):
            sol.check_bounds()


class TestPeriod:
    def test_period_makes_counts_integral(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        T = sol.period()
        for node in sol.alpha:
            assert (sol.compute_rate(node) * T).denominator == 1
        for (i, j) in sol.s:
            assert (sol.edge_rate(i, j) * T).denominator == 1

    def test_period_minimal_for_known_case(self, star4):
        sol = solve_master_slave(star4, "M")
        assert sol.period() == 2  # rates are 1/2-granular on this star

    def test_tasks_and_messages_integral(self, star4):
        sol = solve_master_slave(star4, "M")
        T = sol.period()
        tasks = sol.tasks_per_period(T)
        msgs = sol.messages_per_period(T)
        assert all(isinstance(v, int) for v in tasks.values())
        assert all(isinstance(v, int) for v in msgs.values())

    def test_wrong_period_detected(self, star4):
        sol = solve_master_slave(star4, "M")
        with pytest.raises(SteadyStateError):
            sol.tasks_per_period(1)  # 1 is not a multiple of the period


class TestSimplify:
    def test_cycle_removed_preserving_invariants(self):
        g = Platform("loop")
        g.add_node("M", 1)
        g.add_node("A", 1)
        g.add_node("B", 1)
        g.add_edge("M", "A", 1)
        g.add_bidirectional_edge("A", "B", 1)
        # hand-build: M sends 1/2 to A; A and B circulate junk at rate 1/4
        sol = SteadyStateSolution(
            platform=g, problem="master-slave", throughput=Fraction(3, 2),
            alpha={"M": Fraction(1), "A": Fraction(1, 2)},
            s={
                ("M", "A"): Fraction(1, 2),
                ("A", "B"): Fraction(1, 4),
                ("B", "A"): Fraction(1, 4),
            },
            source="M",
        )
        sol.simplify()
        assert sol.s[("A", "B")] == 0
        assert sol.s[("B", "A")] == 0
        assert sol.s[("M", "A")] == Fraction(1, 2)
        sol.verify()

    def test_simplify_noop_for_scatter(self, fig2):
        from repro.core.scatter import solve_scatter

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        before = dict(sol.s)
        sol.simplify()  # problem != master-slave: untouched
        assert sol.s == before


class TestSummary:
    def test_summary_mentions_throughput(self, star4):
        sol = solve_master_slave(star4, "M")
        text = sol.summary()
        assert "throughput" in text
        assert "3/2" in text
