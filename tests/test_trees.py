"""Arborescence enumeration and packing tests (§4.3 machinery)."""

from fractions import Fraction

import pytest

from repro.core.trees import (
    TreeEnumerationLimit,
    enumerate_arborescences,
    greedy_tree_packing,
    pack_trees,
    tree_recv_time,
    tree_send_time,
    tree_throughput,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError


def diamond():
    g = Platform("diamond")
    for n in "SABT":
        g.add_node(n, 1)
    g.add_edge("S", "A", 1)
    g.add_edge("S", "B", 1)
    g.add_edge("A", "T", 1)
    g.add_edge("B", "T", 1)
    return g


class TestEnumeration:
    def test_chain_single_tree(self):
        g = gen.chain(3, link_c=1)
        trees = enumerate_arborescences(g, "N0")
        assert len(trees) == 1
        assert trees[0] == frozenset({("N0", "N1"), ("N1", "N2")})

    def test_diamond_spanning(self):
        trees = enumerate_arborescences(diamond(), "S")
        # T's parent is A or B; both A and B must be reached from S
        assert len(trees) == 2

    def test_diamond_steiner_to_t(self):
        trees = enumerate_arborescences(diamond(), "S", terminals=["T"])
        # two minimal paths, each a Steiner tree
        assert len(trees) == 2
        for t in trees:
            assert len(t) == 2

    def test_minimality_prunes_leaves(self):
        trees = enumerate_arborescences(diamond(), "S", terminals=["A"])
        assert trees == [frozenset({("S", "A")})]

    def test_fig2_multicast_trees(self, fig2):
        trees = enumerate_arborescences(
            fig2, "P0", terminals=["P5", "P6"]
        )
        # the seven structurally distinct Steiner arborescences:
        # {a-route, b-route} x {P5, P6} combinations plus the three trees
        # funnelling both targets through P3->P4
        assert len(trees) == 7
        for t in trees:
            heads = [v for (_, v) in t]
            assert len(heads) == len(set(heads))  # in-degree <= 1
            assert "P5" in heads and "P6" in heads

    def test_root_cannot_be_terminal(self, fig2):
        with pytest.raises(PlatformError):
            enumerate_arborescences(fig2, "P0", terminals=["P0"])

    def test_limit_enforced(self):
        g = gen.grid2d(3, 3, seed=0)
        with pytest.raises(TreeEnumerationLimit):
            enumerate_arborescences(g, "G0_0", limit=3)

    def test_empty_terminals(self):
        g = gen.chain(2)
        assert enumerate_arborescences(g, "N0", terminals=[]) == [frozenset()]


class TestTreeMetrics:
    def test_send_time_counts_out_edges(self):
        g = diamond()
        tree = frozenset({("S", "A"), ("S", "B"), ("A", "T")})
        st = tree_send_time(g, tree)
        assert st["S"] == 2  # sends twice at c=1
        assert st["A"] == 1

    def test_recv_time_single_parent(self):
        g = diamond()
        tree = frozenset({("S", "A"), ("A", "T")})
        rt = tree_recv_time(g, tree)
        assert rt == {"A": Fraction(1), "T": Fraction(1)}

    def test_recv_time_rejects_double_parent(self):
        g = diamond()
        bad = frozenset({("S", "A"), ("S", "B"), ("A", "T"), ("B", "T")})
        with pytest.raises(PlatformError):
            tree_recv_time(g, bad)

    def test_tree_throughput(self):
        g = diamond()
        tree = frozenset({("S", "A"), ("S", "B"), ("A", "T")})
        # S's send port needs 2 time-units per instance
        assert tree_throughput(g, tree) == Fraction(1, 2)

    def test_empty_tree_throughput(self):
        assert tree_throughput(diamond(), frozenset()) == 0


class TestPacking:
    def test_single_tree_pack(self):
        g = gen.chain(3, link_c=1)
        trees = enumerate_arborescences(g, "N0")
        tp, rates = pack_trees(g, trees)
        assert tp == 1  # each node sends/receives once per instance at c=1
        assert sum(rates.values(), start=Fraction(0)) == 1

    def test_diamond_packing_cannot_beat_forced_double_send(self):
        """In the pure diamond S must send every instance twice (A and B
        have no other parent), so packing equals the single-tree rate."""
        g = diamond()
        trees = enumerate_arborescences(g, "S")
        single_best = max(tree_throughput(g, t) for t in trees)
        tp, _ = pack_trees(g, trees)
        assert tp == single_best == Fraction(1, 2)

    def test_packing_beats_single_tree_with_expensive_relays(self):
        """Fractional packing strictly beats the best single tree.

        S broadcasts to A and B; cheap direct links (c=1), expensive
        relay links A<->B (c=3).  Chains are throttled by the relay
        (rate 1/3), the double-send tree by S's port (rate 1/2); mixing
        x(chain-via-A) = x(chain-via-B) = 1/6 and x(double-send) = 1/3
        yields 2/3 (hand-verified: S's port and both receive ports
        saturate exactly).
        """
        g = Platform("relay3")
        for n in "SAB":
            g.add_node(n, 1)
        g.add_edge("S", "A", 1)
        g.add_edge("S", "B", 1)
        g.add_edge("A", "B", 3)
        g.add_edge("B", "A", 3)
        trees = enumerate_arborescences(g, "S")
        single_best = max(tree_throughput(g, t) for t in trees)
        tp, rates = pack_trees(g, trees)
        assert single_best == Fraction(1, 2)
        assert tp == Fraction(2, 3)
        assert len(rates) >= 2  # genuinely uses several trees

    def test_empty_pack(self):
        tp, rates = pack_trees(diamond(), [])
        assert tp == 0 and rates == {}

    def test_packing_respects_ports(self):
        g = diamond()
        trees = enumerate_arborescences(g, "S")
        tp, rates = pack_trees(g, trees)
        send_busy = {}
        recv_busy = {}
        for tree, rate in rates.items():
            for node, t in tree_send_time(g, tree).items():
                send_busy[node] = send_busy.get(node, Fraction(0)) + rate * t
            for node, t in tree_recv_time(g, tree).items():
                recv_busy[node] = recv_busy.get(node, Fraction(0)) + rate * t
        assert all(v <= 1 for v in send_busy.values())
        assert all(v <= 1 for v in recv_busy.values())

    def test_greedy_packing_is_lower_bound(self):
        g = diamond()
        trees = enumerate_arborescences(g, "S")
        opt, _ = pack_trees(g, trees)
        greedy, packing = greedy_tree_packing(g, "S")
        assert 0 < greedy <= opt
        for tree in packing:
            heads = {v for (_, v) in tree}
            assert {"A", "B", "T"} <= heads
