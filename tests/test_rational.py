"""Unit and property tests for the exact-arithmetic helpers."""

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro._rational import (
    INF,
    as_fraction,
    format_fraction,
    frac_gcd,
    is_infinite,
    lcm_denominators,
)

fractions_st = st.fractions(
    min_value=Fraction(-1000), max_value=Fraction(1000), max_denominator=1000
)


class TestAsFraction:
    def test_int_passthrough(self):
        assert as_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        f = Fraction(3, 7)
        assert as_fraction(f) is f

    def test_float_decimal(self):
        assert as_fraction(0.1) == Fraction(1, 10)

    def test_float_half(self):
        assert as_fraction(0.5) == Fraction(1, 2)

    def test_string(self):
        assert as_fraction("2/3") == Fraction(2, 3)

    def test_infinite_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("inf"))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            as_fraction(float("nan"))

    def test_bad_type(self):
        with pytest.raises(TypeError):
            as_fraction(object())


class TestIsInfinite:
    def test_inf(self):
        assert is_infinite(INF)

    def test_fraction(self):
        assert not is_infinite(Fraction(10**9))

    def test_int(self):
        assert not is_infinite(5)


class TestLcmDenominators:
    def test_empty(self):
        assert lcm_denominators([]) == 1

    def test_integers(self):
        assert lcm_denominators([Fraction(3), Fraction(5)]) == 1

    def test_simple(self):
        assert lcm_denominators([Fraction(1, 2), Fraction(1, 3)]) == 6

    def test_shared_factor(self):
        assert lcm_denominators([Fraction(1, 4), Fraction(1, 6)]) == 12

    @given(st.lists(fractions_st, min_size=1, max_size=10))
    def test_products_are_integers(self, values):
        lcm = lcm_denominators(values)
        for v in values:
            assert (v * lcm).denominator == 1

    @given(st.lists(fractions_st, min_size=1, max_size=8))
    def test_minimality(self, values):
        """No proper divisor of the lcm clears all denominators."""
        lcm = lcm_denominators(values)
        if lcm > 1:
            for p in (2, 3, 5, 7, 11, 13):
                if lcm % p == 0:
                    smaller = lcm // p
                    assert any(
                        (v * smaller).denominator != 1 for v in values
                    )


class TestFracGcd:
    def test_empty(self):
        assert frac_gcd([]) == 0

    def test_zero_only(self):
        assert frac_gcd([Fraction(0)]) == 0

    def test_halves(self):
        assert frac_gcd([Fraction(1, 2), Fraction(3, 2)]) == Fraction(1, 2)

    def test_mixed(self):
        assert frac_gcd([Fraction(1, 4), Fraction(1, 6)]) == Fraction(1, 12)

    @given(st.lists(fractions_st.filter(lambda f: f != 0),
                    min_size=1, max_size=8))
    def test_divides_all(self, values):
        g = frac_gcd(values)
        assert g > 0
        for v in values:
            assert (abs(v) / g).denominator == 1


class TestFormat:
    def test_integer(self):
        assert format_fraction(Fraction(4)) == "4"

    def test_ratio(self):
        assert format_fraction(Fraction(3, 7)) == "3/7"

    def test_long_falls_back_to_float(self):
        f = Fraction(123456789, 987654321001)
        text = format_fraction(f, max_len=8)
        assert "/" not in text
