"""Hypothesis property tests over randomly generated platforms.

These drive the *whole pipeline* — LP, period, colouring, reconstruction,
execution — on arbitrary platform shapes and assert the paper's guarantees
as universally quantified properties.
"""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.master_slave import solve_master_slave, ntask
from repro.platform import generators as gen
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.periodic_runner import PeriodicRunner

SLOW = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_platform(draw):
    """A random connected platform of 3-7 nodes with optional forwarders."""
    n = draw(st.integers(min_value=3, max_value=7))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    forwarders = draw(st.sampled_from([0.0, 0.0, 0.3]))
    extra = draw(st.sampled_from([0.0, 0.2, 0.5]))
    return gen.random_connected(
        n, seed=seed, forwarder_prob=forwarders, extra_edge_prob=extra
    )


class TestPipelineProperties:
    @settings(**SLOW)
    @given(small_platform())
    def test_solution_invariants(self, platform):
        sol = solve_master_slave(platform, "R0")
        sol.verify()
        assert sol.throughput >= 0

    @settings(**SLOW)
    @given(small_platform())
    def test_reconstruction_invariants(self, platform):
        sol = solve_master_slave(platform, "R0")
        sched = reconstruct_schedule(sol)
        assert Fraction(sched.tasks_per_period()) == (
            sol.throughput * sched.period
        )
        assert len(sched.slices) <= (
            platform.num_edges + 2 * platform.num_nodes
        )

    @settings(**SLOW)
    @given(small_platform())
    def test_constant_deficit_property(self, platform):
        """§4.2 as a universally quantified statement."""
        sol = solve_master_slave(platform, "R0")
        sched = reconstruct_schedule(sol)
        d1 = PeriodicRunner(sched).run(9).deficit
        d2 = PeriodicRunner(sched).run(23).deficit
        assert d1 == d2

    @settings(**SLOW)
    @given(small_platform())
    def test_one_port_traces(self, platform):
        sol = solve_master_slave(platform, "R0")
        sched = reconstruct_schedule(sol)
        res = PeriodicRunner(sched, record_trace=True).run(5)
        res.trace.validate("one-port")

    @settings(**SLOW)
    @given(small_platform(), st.integers(min_value=2, max_value=4))
    def test_faster_links_never_hurt(self, platform, factor):
        """Monotonicity: uniformly speeding up communication cannot lower
        ntask(G) (the LP's feasible region only grows)."""
        faster = platform.scale(comm=Fraction(1, factor))
        assert ntask(faster, "R0") >= ntask(platform, "R0")

    @settings(**SLOW)
    @given(small_platform(), st.integers(min_value=2, max_value=4))
    def test_faster_cpus_never_hurt(self, platform, factor):
        faster = platform.scale(compute=Fraction(1, factor))
        assert ntask(faster, "R0") >= ntask(platform, "R0")

    @settings(**SLOW)
    @given(small_platform())
    def test_master_choice_bounded_by_best(self, platform):
        """Any master's throughput is at most the total compute power and
        at least its own rate — sanity for arbitrary master placement."""
        for master in list(platform.nodes())[:3]:
            spec = platform.node(master)
            tp = ntask(platform, master)
            cap = sum(
                (Fraction(1) / platform.node(n).w
                 for n in platform.compute_nodes()),
                start=Fraction(0),
            )
            assert tp <= cap
            if spec.can_compute:
                assert tp >= Fraction(1) / spec.w


class TestScatterProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(small_platform())
    def test_scatter_bound_and_reconstruction(self, platform):
        from repro.core.scatter import solve_scatter

        targets = [n for n in platform.nodes() if n != "R0"][:2]
        reachable = platform.reachable_from("R0")
        if not all(t in reachable for t in targets):
            return  # unreachable targets: TP = 0 cases are separately tested
        sol = solve_scatter(platform, "R0", targets)
        sol.verify()
        if sol.throughput > 0:
            sched = reconstruct_schedule(sol)
            per_period = sol.throughput * sched.period
            for k in targets:
                delivered = sum(
                    (r for _, r in sched.routes[str(k)]), start=Fraction(0)
                )
                assert delivered == per_period
