"""Tests for the platform generators, incl. the paper's figures."""

from fractions import Fraction

import pytest

from repro.platform import generators as gen
from repro.platform.graph import PlatformError


class TestPaperFigures:
    def test_figure1_shape(self):
        g = gen.paper_figure1()
        assert g.num_nodes == 6
        # seven drawn links, each oriented both ways
        assert g.num_edges == 14
        for a, b in [("P1", "P2"), ("P1", "P3"), ("P2", "P4"),
                     ("P2", "P5"), ("P3", "P6"), ("P4", "P5"), ("P5", "P6")]:
            assert g.has_edge(a, b)
            assert g.has_edge(b, a)

    def test_figure1_custom_weights(self):
        g = gen.paper_figure1(weights=[1] * 6, costs={("P1", "P2"): 5})
        assert g.w("P3") == 1
        assert g.c("P1", "P2") == 5

    def test_figure1_wrong_weight_count(self):
        with pytest.raises(ValueError):
            gen.paper_figure1(weights=[1, 2])

    def test_figure2_shape(self):
        g = gen.paper_figure2_multicast()
        assert g.num_nodes == 7
        assert g.num_edges == 9
        # the one expensive edge
        assert g.c("P3", "P4") == 2
        unit_edges = [e for e in g.edges() if e.c == 1]
        assert len(unit_edges) == 8

    def test_figure2_routes_exist(self):
        """The four routes of the section 4.3 narrative must exist."""
        g = gen.paper_figure2_multicast()
        for path in [
            ["P0", "P1", "P5"],
            ["P0", "P2", "P3", "P4", "P5"],
            ["P0", "P1", "P3", "P4", "P6"],
            ["P0", "P2", "P6"],
        ]:
            for a, b in zip(path, path[1:]):
                assert g.has_edge(a, b), f"missing {a}->{b}"

    def test_figure2_source_is_forwarder(self):
        g = gen.paper_figure2_multicast()
        assert not g.node("P0").can_compute


class TestStar:
    def test_default(self):
        g = gen.star(3)
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert g.successors("M") == ["W1", "W2", "W3"]

    def test_custom(self):
        g = gen.star(2, worker_w=[5, 7], link_c=[2, 3])
        assert g.w("W2") == 7
        assert g.c("M", "W2") == 3

    def test_bidirectional(self):
        g = gen.star(2, bidirectional=True)
        assert g.has_edge("W1", "M")

    def test_needs_workers(self):
        with pytest.raises(ValueError):
            gen.star(0)


class TestChain:
    def test_shape(self):
        g = gen.chain(4)
        assert g.num_nodes == 4
        assert g.num_edges == 3
        assert g.depth_from("N0") == 3

    def test_min_length(self):
        with pytest.raises(ValueError):
            gen.chain(1)


class TestTreeGridRandomClustered:
    def test_binary_tree(self):
        g = gen.binary_tree(3, seed=1)
        assert g.num_nodes == 15
        assert g.num_edges == 14
        assert g.is_connected_from("T0")

    def test_binary_tree_depth_validation(self):
        with pytest.raises(ValueError):
            gen.binary_tree(0)

    def test_grid(self):
        g = gen.grid2d(3, 4, seed=2)
        assert g.num_nodes == 12
        # internal bidirectional mesh: 2*(3*3 + 2*4) = 34 directed edges
        assert g.num_edges == 2 * (3 * 3 + 2 * 4)
        assert g.is_connected_from("G0_0")

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            gen.grid2d(0, 3)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_connected(self, seed):
        g = gen.random_connected(9, seed=seed)
        assert g.is_connected_from("R0")

    def test_random_deterministic(self):
        a = gen.random_connected(8, seed=5)
        b = gen.random_connected(8, seed=5)
        assert a.describe() == b.describe()

    def test_random_forwarders(self):
        g = gen.random_connected(20, seed=3, forwarder_prob=1.0)
        # root always computes; everyone else is a forwarder
        assert g.compute_nodes() == ["R0"]

    def test_random_min_size(self):
        with pytest.raises(ValueError):
            gen.random_connected(1)

    def test_clustered(self):
        g = gen.clustered(3, 4, seed=11)
        assert g.num_nodes == 12
        assert g.is_connected_from("C0_0")

    def test_clustered_two_rings(self):
        g = gen.clustered(2, 2, seed=11)
        # one ring link between the two gateways, both directions
        assert g.has_edge("C0_0", "C1_0")
        assert g.has_edge("C1_0", "C0_0")

    def test_clustered_validation(self):
        with pytest.raises(ValueError):
            gen.clustered(0, 2)
