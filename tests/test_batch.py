"""Explicit finite-batch schedule tests (§4.2 materialised)."""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.schedule.batch import batch_ratio_series, build_batch_schedule
from repro.schedule.periodic import ScheduleError
from repro.schedule.reconstruction import reconstruct_schedule


def schedule_for(platform, master):
    return reconstruct_schedule(solve_master_slave(platform, master))


class TestBatchSchedule:
    def test_phases_add_up(self, star4):
        sched = schedule_for(star4, "M")
        batch = build_batch_schedule(sched, 100)
        assert batch.makespan == (
            batch.init_time
            + sched.period * batch.steady_periods
            + batch.cleanup_time
        )

    def test_makespan_above_lower_bound(self, any_platform):
        name, platform, master = any_platform
        sched = schedule_for(platform, master)
        batch = build_batch_schedule(sched, 50)
        assert batch.makespan >= batch.lower_bound

    def test_ratio_tends_to_one(self, star4):
        sched = schedule_for(star4, "M")
        series = batch_ratio_series(sched, [10, 100, 1000, 10000])
        ratios = [float(r) for _, r in series]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] < 1.01

    def test_overhead_constant_in_n(self, star4):
        """makespan - n/ntask is bounded by a constant (strong §4.2)."""
        sched = schedule_for(star4, "M")
        overheads = [
            float(build_batch_schedule(sched, n).makespan
                  - Fraction(n) / sched.throughput)
            for n in (100, 1000, 10000)
        ]
        assert max(overheads) - min(overheads) <= max(
            float(sched.period) * 2, 4.0
        )

    def test_trace_valid_under_one_port(self, star4):
        sched = schedule_for(star4, "M")
        batch = build_batch_schedule(sched, 12, record_trace=True)
        batch.trace.validate("one-port")
        # phases appear in the trace
        labels = {iv.label for iv in batch.trace.intervals}
        assert "steady" in labels
        assert "init" in labels or not sched.routes.get("task")

    def test_grid_trace_valid(self, grid33):
        sched = schedule_for(grid33, "G0_0")
        batch = build_batch_schedule(sched, 60, record_trace=True)
        batch.trace.validate("one-port")

    def test_zero_tasks(self, star4):
        sched = schedule_for(star4, "M")
        batch = build_batch_schedule(sched, 0)
        assert batch.steady_periods == 0

    def test_rejects_scatter(self, fig2):
        from repro.core.scatter import solve_scatter

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sched = reconstruct_schedule(sol)
        with pytest.raises(ScheduleError):
            build_batch_schedule(sched, 10)

    def test_negative_tasks_rejected(self, star4):
        sched = schedule_for(star4, "M")
        with pytest.raises(ValueError):
            build_batch_schedule(sched, -1)
