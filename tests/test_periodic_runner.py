"""Periodic executor tests: priming, steady state, and the §4.2 claim that
the deficit against K*T*ntask is a constant independent of K."""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.periodic_runner import (
    PeriodicRunner,
    steady_state_reached_after,
)


def build(platform, master):
    sol = solve_master_slave(platform, master)
    return sol, reconstruct_schedule(sol)


class TestSteadyState:
    def test_constant_deficit(self, any_platform):
        """THE asymptotic optimality claim, machine-checked."""
        name, platform, master = any_platform
        sol, sched = build(platform, master)
        short = PeriodicRunner(sched).run(10)
        long = PeriodicRunner(sched).run(41)
        assert short.deficit == long.deficit
        assert short.deficit >= 0

    def test_rate_approaches_lp(self, any_platform):
        name, platform, master = any_platform
        sol, sched = build(platform, master)
        res = PeriodicRunner(sched).run(60)
        assert res.achieved_rate <= sol.throughput
        # deficit constant  =>  rate -> LP value like C/K
        gap = sol.throughput - res.achieved_rate
        assert gap <= res.deficit / (60 * sched.period)

    def test_steady_state_reached_within_platform_size(self, any_platform):
        """Priming needs at most ~depth periods (section 4.2: "no more
        than the depth of the platform graph")."""
        name, platform, master = any_platform
        sol, sched = build(platform, master)
        res = PeriodicRunner(sched).run(platform.num_nodes + 2)
        reached = steady_state_reached_after(res)
        assert reached <= platform.num_nodes

    def test_full_rate_periods_exact(self, star4):
        sol, sched = build(star4, "M")
        res = PeriodicRunner(sched).run(10)
        per_period_target = sol.throughput * sched.period
        start = steady_state_reached_after(res)
        for p in range(start, 10):
            assert res.completed_per_period[p] == per_period_target

    def test_trace_respects_one_port(self, any_platform):
        name, platform, master = any_platform
        sol, sched = build(platform, master)
        res = PeriodicRunner(sched, record_trace=True).run(6)
        res.trace.validate("one-port")

    def test_zero_periods(self, star4):
        sol, sched = build(star4, "M")
        res = PeriodicRunner(sched).run(0)
        assert res.total_completed == 0
        assert res.deficit == 0

    def test_master_only_platform(self):
        from repro.platform.graph import Platform

        g = Platform("solo")
        g.add_node("M", 2)
        sol, sched = build(g, "M")
        res = PeriodicRunner(sched).run(5)
        assert res.deficit == 0  # no communication, no priming needed
        assert res.total_completed == sol.throughput * sched.period * 5

    def test_rejects_non_master_slave(self, fig2):
        from repro.core.scatter import solve_scatter

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sched = reconstruct_schedule(sol)
        with pytest.raises(ValueError):
            PeriodicRunner(sched)

    def test_negative_periods_rejected(self, star4):
        sol, sched = build(star4, "M")
        with pytest.raises(ValueError):
            PeriodicRunner(sched).run(-1)


class TestAgainstGreedyUpperBound:
    def test_no_run_exceeds_lp_bound(self, any_platform):
        """The LP optimum really is an upper bound (section 3.1)."""
        name, platform, master = any_platform
        sol, sched = build(platform, master)
        res = PeriodicRunner(sched).run(25)
        assert res.total_completed <= res.steady_state_bound
