"""Weighted bipartite edge colouring (§4.1): correctness and compactness.

The decomposition must (a) produce matchings, (b) cover each edge for
exactly its weight, (c) finish within the maximum port load, and (d) stay
polynomial-size no matter how large the weights (periods) are.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.schedule.edge_coloring import (
    EdgeColoringError,
    MatchingSlice,
    verify_coloring,
    vertex_loads,
    weighted_edge_coloring,
)

weight = st.fractions(
    min_value=Fraction(0), max_value=Fraction(50), max_denominator=12
)


class TestBasic:
    def test_empty(self):
        assert weighted_edge_coloring([]) == []

    def test_single_edge(self):
        slices = weighted_edge_coloring([("a", "x", Fraction(3))])
        assert len(slices) == 1
        assert slices[0].duration == 3
        assert slices[0].pairs == {"a": "x"}

    def test_two_disjoint_edges_share_a_slice(self):
        slices = weighted_edge_coloring(
            [("a", "x", Fraction(2)), ("b", "y", Fraction(2))]
        )
        assert len(slices) == 1
        assert slices[0].pairs == {"a": "x", "b": "y"}

    def test_conflicting_edges_are_serialised(self):
        # same sender: must be in different slices
        slices = weighted_edge_coloring(
            [("a", "x", Fraction(1)), ("a", "y", Fraction(2))]
        )
        total = sum((s.duration for s in slices), start=Fraction(0))
        assert total == 3  # sender load = 3

    def test_same_receiver_serialised(self):
        slices = weighted_edge_coloring(
            [("a", "x", Fraction(1)), ("b", "x", Fraction(1))]
        )
        for s in slices:
            assert len(s.pairs) == 1

    def test_duplicate_edge_rejected(self):
        with pytest.raises(EdgeColoringError):
            weighted_edge_coloring(
                [("a", "x", Fraction(1)), ("a", "x", Fraction(1))]
            )

    def test_negative_weight_rejected(self):
        with pytest.raises(EdgeColoringError):
            weighted_edge_coloring([("a", "x", Fraction(-1))])

    def test_zero_weights_skipped(self):
        assert weighted_edge_coloring([("a", "x", Fraction(0))]) == []

    def test_slice_validation(self):
        with pytest.raises(EdgeColoringError):
            MatchingSlice(pairs={"a": "x", "b": "x"}, duration=Fraction(1))
        with pytest.raises(EdgeColoringError):
            MatchingSlice(pairs={"a": "x"}, duration=Fraction(0))

    def test_exponential_period_compact_description(self):
        """Huge weights (the log T is polynomial point of §4.1)."""
        big = Fraction(10**30)
        edges = [
            ("a", "x", big), ("a", "y", big + 1),
            ("b", "x", big + 2), ("b", "y", big + 3),
        ]
        slices = weighted_edge_coloring(edges)
        assert len(slices) <= 4 + 4  # |E| + padding, far below the weights
        verify_coloring(edges, slices)


@st.composite
def weighted_bipartite(draw):
    n_left = draw(st.integers(min_value=1, max_value=5))
    n_right = draw(st.integers(min_value=1, max_value=5))
    edges = []
    for u in range(n_left):
        for v in range(n_right):
            w = draw(weight)
            if w > 0 and draw(st.booleans()):
                edges.append((f"s{u}", f"r{v}", w))
    return edges


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(weighted_bipartite())
    def test_decomposition_invariants(self, edges):
        slices = weighted_edge_coloring(edges)
        verify_coloring(edges, slices)

    @settings(max_examples=60, deadline=None)
    @given(weighted_bipartite())
    def test_total_duration_equals_max_load(self, edges):
        if not edges:
            return
        slices = weighted_edge_coloring(edges)
        send, recv = vertex_loads(edges)
        max_load = max(list(send.values()) + list(recv.values()))
        covered = {}
        for s in slices:
            for u, v in s.pairs.items():
                covered[(u, v)] = covered.get((u, v), Fraction(0)) + s.duration
        # every maximally loaded sender must be busy the whole time
        total = sum((s.duration for s in slices), start=Fraction(0))
        assert total <= max_load

    @settings(max_examples=60, deadline=None)
    @given(weighted_bipartite())
    def test_slice_count_is_polynomial(self, edges):
        slices = weighted_edge_coloring(edges)
        n_vertices = len({u for u, _, _ in edges}) + len({v for _, v, _ in edges})
        assert len(slices) <= len(edges) + n_vertices

    @settings(max_examples=40, deadline=None)
    @given(weighted_bipartite())
    def test_one_port_within_every_slice(self, edges):
        for s in weighted_edge_coloring(edges):
            senders = list(s.pairs.keys())
            receivers = list(s.pairs.values())
            assert len(set(senders)) == len(senders)
            assert len(set(receivers)) == len(receivers)


class TestVerifyColoring:
    def test_detects_wrong_cover(self):
        edges = [("a", "x", Fraction(2))]
        bad = [MatchingSlice(pairs={"a": "x"}, duration=Fraction(1))]
        with pytest.raises(EdgeColoringError):
            verify_coloring(edges, bad)

    def test_detects_extra_edge(self):
        edges = [("a", "x", Fraction(1))]
        bad = [MatchingSlice(pairs={"b": "y"}, duration=Fraction(1))]
        with pytest.raises(EdgeColoringError):
            verify_coloring(edges, bad)
