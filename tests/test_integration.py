"""Cross-module integration tests: the full paper pipeline, end to end.

Each test walks an entire story from the paper: LP -> period ->
edge colouring -> periodic schedule -> simulated execution -> measured
throughput, and checks the chain's global guarantees rather than any
single module.
"""

from fractions import Fraction

import pytest

from repro import (
    PeriodicRunner,
    TaskGraph,
    analyze_figure2,
    autonomous_throughput,
    fixed_period_schedule,
    generators as gen,
    grouped_schedule_makespan,
    ntask,
    packing_to_schedule,
    reconstruct_schedule,
    run_demand_driven,
    solve_broadcast,
    solve_dag_collection,
    solve_master_slave,
    solve_multicast,
    solve_scatter,
)


class TestFullMasterSlavePipeline:
    def test_lp_to_simulation_chain(self, any_platform):
        """LP throughput == schedule throughput == simulated steady rate."""
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        res = PeriodicRunner(sched, record_trace=True).run(
            platform.num_nodes + 8
        )
        res.trace.validate("one-port")
        # final period runs at the exact LP rate
        assert res.completed_per_period[-1] == sol.throughput * sched.period

    def test_three_estimates_agree(self, tree3):
        """LP == autonomous local protocol == demand-driven measurement
        (asymptotically) on trees."""
        lp = ntask(tree3, "T0")
        auto = autonomous_throughput(tree3, "T0")
        assert lp == auto
        sim = run_demand_driven(tree3, "T0", horizon=900, policy="bandwidth")
        assert float(sim.rate) >= 0.93 * float(lp)

    def test_fixed_period_simulates_consistently(self, grid33):
        sol = solve_master_slave(grid33, "G0_0")
        sched = fixed_period_schedule(sol, 40)
        res = PeriodicRunner(sched).run(20)
        assert res.completed_per_period[-1] == (
            sched.throughput * sched.period
        )

    def test_startup_analysis_consistent_with_schedule(self, star4):
        sol = solve_master_slave(star4, "M")
        sched = reconstruct_schedule(sol)
        startups = {e: Fraction(1) for e in sched.messages}
        analysis = grouped_schedule_makespan(sched, startups, 5000)
        assert analysis.lower_bound == Fraction(5000) / sol.throughput
        assert analysis.total_time > analysis.lower_bound


class TestCollectivesPipeline:
    def test_broadcast_schedule_runs_at_bound(self, fig2):
        sol = solve_broadcast(fig2, "P0")
        sched = packing_to_schedule(fig2, sol.packing, "P0", "broadcast")
        assert sched.throughput == sol.lp_bound  # achievability, executed

    def test_multicast_gap_consistent_with_schedules(self, fig2):
        report = analyze_figure2()
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        sched = packing_to_schedule(fig2, analysis.packing, "P0", "multicast")
        assert sched.throughput == report.achievable < report.max_lp

    def test_scatter_schedule_consistent(self, fig2):
        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sched = reconstruct_schedule(sol)
        per_period = sol.throughput * sched.period
        for k in ("P5", "P6"):
            delivered = sum(
                (rate for _, rate in sched.routes[k]), start=Fraction(0)
            )
            assert delivered == per_period


class TestDagVsMasterSlave:
    def test_dag_framework_subsumes_ssms(self, any_platform):
        name, platform, master = any_platform
        dag = TaskGraph.single_task()
        assert solve_dag_collection(platform, dag, master).throughput == (
            ntask(platform, master)
        )


class TestProblemHierarchy:
    def test_multicast_between_scatter_and_broadcast(self, fig2):
        """Fixing the platform: scatter(T) <= multicast(T) <= broadcast-
        style bound; and multicast over all nodes == broadcast."""
        targets = ["P5", "P6"]
        scatter_tp = solve_scatter(fig2, "P0", targets).throughput
        analysis = solve_multicast(fig2, "P0", targets)
        assert scatter_tp <= analysis.tree_optimal <= analysis.max_lp

    def test_more_targets_never_help(self, fig2):
        """Adding a multicast target cannot raise the throughput."""
        two = solve_multicast(fig2, "P0", ["P5", "P6"]).tree_optimal
        three = solve_multicast(fig2, "P0", ["P5", "P6", "P4"]).tree_optimal
        assert three <= two
