"""Hypothesis round-trip properties for serialisation."""

from fractions import Fraction

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.platform import generators as gen
from repro.platform.serialization import (
    platform_from_json,
    platform_to_json,
    schedule_from_json,
    schedule_to_json,
)

SLOW = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def any_generated_platform(draw):
    kind = draw(st.sampled_from(["star", "chain", "tree", "grid", "random"]))
    seed = draw(st.integers(min_value=0, max_value=9999))
    if kind == "star":
        n = draw(st.integers(min_value=1, max_value=5))
        return gen.star(n)
    if kind == "chain":
        n = draw(st.integers(min_value=2, max_value=6))
        return gen.chain(n)
    if kind == "tree":
        return gen.binary_tree(draw(st.integers(min_value=1, max_value=3)),
                               seed=seed)
    if kind == "grid":
        return gen.grid2d(draw(st.integers(min_value=1, max_value=3)),
                          draw(st.integers(min_value=1, max_value=3)),
                          seed=seed)
    return gen.random_connected(draw(st.integers(min_value=2, max_value=7)),
                                seed=seed,
                                forwarder_prob=draw(
                                    st.sampled_from([0.0, 0.3])))


class TestRoundTripProperties:
    @settings(**SLOW)
    @given(any_generated_platform())
    def test_platform_round_trip_exact(self, platform):
        clone = platform_from_json(platform_to_json(platform))
        assert clone.nodes() == platform.nodes()
        for node in platform.nodes():
            assert clone.w(node) == platform.w(node)
        for spec in platform.edges():
            assert clone.c(spec.src, spec.dst) == spec.c
        assert clone.num_edges == platform.num_edges

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(any_generated_platform())
    def test_schedule_round_trip_executes_identically(self, platform):
        from repro.core.master_slave import solve_master_slave
        from repro.schedule.reconstruction import reconstruct_schedule
        from repro.simulator.periodic_runner import PeriodicRunner

        master = platform.nodes()[0]
        sched = reconstruct_schedule(solve_master_slave(platform, master))
        clone = schedule_from_json(schedule_to_json(sched))
        a = PeriodicRunner(sched).run(7)
        b = PeriodicRunner(clone).run(7)
        assert a.total_completed == b.total_completed
        assert a.deficit == b.deficit
