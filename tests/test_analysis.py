"""Tests for the analysis helpers (bounds + reporting)."""

from fractions import Fraction

import pytest

from repro.analysis.bounds import (
    deficit_is_constant,
    efficiency_series,
    fit_sqrt_constant,
    is_nonincreasing,
    steady_state_upper_bound,
)
from repro.analysis.reporting import (
    render_edge_flows,
    render_series,
    render_table,
)
from repro.core.master_slave import solve_master_slave
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.periodic_runner import PeriodicRunner


class TestBounds:
    def test_upper_bound(self):
        assert steady_state_upper_bound(Fraction(3, 2), Fraction(10)) == 15

    def test_deficit_constant_detection(self, star4):
        sol = solve_master_slave(star4, "M")
        sched = reconstruct_schedule(sol)
        runs = [PeriodicRunner(sched).run(k) for k in (5, 12, 30)]
        assert deficit_is_constant(runs)

    def test_efficiency_series_monotone(self, star4):
        sol = solve_master_slave(star4, "M")
        sched = reconstruct_schedule(sol)
        runs = [PeriodicRunner(sched).run(k) for k in (2, 8, 32)]
        series = efficiency_series(runs)
        effs = [e for _, e in series]
        assert effs == sorted(effs)
        assert all(e <= 1 for e in effs)

    def test_fit_sqrt_constant(self):
        data = [(100, Fraction(11, 10)), (400, Fraction(21, 20))]
        c = fit_sqrt_constant(data)
        assert c == pytest.approx(1.0, rel=1e-6)

    def test_fit_ignores_sub_one_ratios(self):
        assert fit_sqrt_constant([(100, Fraction(9, 10))]) == 0

    def test_is_nonincreasing(self):
        assert is_nonincreasing([Fraction(3), Fraction(2), Fraction(2)])
        assert not is_nonincreasing([Fraction(1), Fraction(2)])
        assert is_nonincreasing(
            [Fraction(1), Fraction(11, 10)], slack=Fraction(1, 5)
        )


class TestReporting:
    def test_table(self):
        text = render_table(
            ["name", "value"],
            [["alpha", Fraction(1, 3)], ["beta", 0.5]],
            title="demo",
        )
        assert "demo" in text
        assert "1/3" in text
        assert "0.5000" in text

    def test_edge_flows(self):
        text = render_edge_flows(
            {("P0", "P1"): Fraction(1, 2)}, title="fig3a"
        )
        assert "P0 -> P1: 1/2" in text

    def test_series(self):
        text = render_series(
            [(10, Fraction(1, 2)), (20, Fraction(3, 4))],
            x_label="n", y_label="ratio", title="conv",
        )
        assert "conv" in text
        assert "#" in text

    def test_series_constant_values(self):
        text = render_series(
            [(1, Fraction(1)), (2, Fraction(1))], "x", "y"
        )
        assert "1" in text
