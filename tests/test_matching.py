"""Hopcroft-Karp tests, cross-checked against networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.schedule.matching import hopcroft_karp, perfect_matching


def check_is_matching(adjacency, matching):
    rights = list(matching.values())
    assert len(set(rights)) == len(rights), "a right vertex matched twice"
    for u, v in matching.items():
        assert v in set(adjacency[u]), "matched pair is not an edge"


class TestBasic:
    def test_empty(self):
        assert hopcroft_karp({}) == {}

    def test_single_edge(self):
        assert hopcroft_karp({"a": ["x"]}) == {"a": "x"}

    def test_competition_resolved_by_augmenting(self):
        # both want x, but a can switch to y
        m = hopcroft_karp({"a": ["x", "y"], "b": ["x"]})
        assert len(m) == 2

    def test_no_edges_left_vertex(self):
        m = hopcroft_karp({"a": [], "b": ["x"]})
        assert m == {"b": "x"}

    def test_perfect_matching_ok(self):
        m = perfect_matching({"a": ["x"], "b": ["y"]})
        assert len(m) == 2

    def test_perfect_matching_fails(self):
        with pytest.raises(ValueError):
            perfect_matching({"a": ["x"], "b": ["x"]})

    def test_long_augmenting_chain(self):
        # classic chain that forces length-5 augmenting paths
        adj = {
            "a": ["x"],
            "b": ["x", "y"],
            "c": ["y", "z"],
        }
        m = hopcroft_karp(adj)
        assert len(m) == 3


@st.composite
def bipartite_graph(draw):
    n_left = draw(st.integers(min_value=1, max_value=8))
    n_right = draw(st.integers(min_value=1, max_value=8))
    edges = set()
    for u in range(n_left):
        for v in range(n_right):
            if draw(st.booleans()):
                edges.add((u, v))
    adjacency = {u: [v for (uu, v) in edges if uu == u] for u in range(n_left)}
    return adjacency


class TestAgainstNetworkx:
    @settings(max_examples=60, deadline=None)
    @given(bipartite_graph())
    def test_maximum_cardinality_matches_networkx(self, adjacency):
        ours = hopcroft_karp(adjacency)
        check_is_matching(adjacency, ours)

        g = nx.Graph()
        lefts = [("L", u) for u in adjacency]
        g.add_nodes_from(lefts, bipartite=0)
        for u, vs in adjacency.items():
            for v in vs:
                g.add_node(("R", v), bipartite=1)
                g.add_edge(("L", u), ("R", v))
        if g.number_of_edges() == 0:
            assert ours == {}
            return
        theirs = nx.bipartite.maximum_matching(g, top_nodes=lefts)
        # networkx returns both directions; count the left-side pairs
        their_size = sum(1 for k in theirs if k[0] == "L")
        assert len(ours) == their_size
