"""The async multiplexed service core: frame-codec fuzzing against both
decoders, request-id multiplexing on one TCP connection, per-request and
server-side deadline semantics, cross-broker coalescing at the shard,
sync-peer interop, the asyncio HTTP front end, and contextvar span
propagation into tasks."""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
import time
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import generators
from repro.service import (
    AsyncServiceServer,
    AsyncShardServer,
    AsyncTcpTransport,
    Broker,
    ShardedBroker,
    ShardTimeoutError,
    SolveRequest,
    TransportError,
    TransportTimeout,
    connect_async,
    encode_frame,
    read_frame_async,
    request_to_dict,
)
from repro.service.transport import MAX_FRAME_BYTES, read_frame
from repro.service.wire import result_from_wire


def _ms_request():
    return SolveRequest(problem="master-slave",
                        platform=generators.paper_figure1(), master="P1")


def _distinct_requests(n):
    """``n`` requests with distinct fingerprints (star sizes vary)."""
    out = [_ms_request()]
    size = 3
    while len(out) < n:
        out.append(SolveRequest(
            problem="master-slave",
            platform=generators.star(size, master_w=2), master="M"))
        size += 1
    return out[:n]


def _solve_msg(request):
    return {"op": "solve", "fp": request.fingerprint(),
            "request": request_to_dict(request)}


def _reference(requests):
    with Broker(executor="sync") as broker:
        return [broker.solve(r) for r in requests]


def _read_sync(payload: bytes):
    """Run the sync decoder against raw bytes via a socketpair."""
    left, right = socket.socketpair()
    try:
        left.sendall(payload)
        left.close()
        return read_frame(right)
    finally:
        right.close()


def _read_async(payload: bytes):
    """Run the async decoder against raw bytes via a fed StreamReader."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_frame_async(reader)
    return asyncio.run(go())


_JSON_SCALARS = st.one_of(st.none(), st.booleans(),
                          st.integers(-2**31, 2**31),
                          st.text(max_size=12))
_MESSAGES = st.dictionaries(
    st.text(min_size=1, max_size=8), _JSON_SCALARS, max_size=6)


# ----------------------------------------------------------------------
# frame codec fuzz: the two decoders agree, and garbage is typed
# ----------------------------------------------------------------------
class TestFrameCodecFuzz:
    @given(message=_MESSAGES)
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_both_decoders(self, message):
        payload = encode_frame(message)
        assert _read_sync(payload) == message
        assert _read_async(payload) == message

    @given(message=_MESSAGES, data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_truncated_frame_is_typed_not_a_hang(self, message, data):
        payload = encode_frame(message)
        cut = data.draw(st.integers(0, len(payload) - 1))
        with pytest.raises(TransportError):
            _read_sync(payload[:cut])
        with pytest.raises(TransportError):
            _read_async(payload[:cut])

    @given(excess=st.integers(1, 2**31 - 1 - MAX_FRAME_BYTES))
    @settings(max_examples=20, deadline=None)
    def test_oversized_length_rejected_before_reading_body(self, excess):
        header = struct.pack(">I", MAX_FRAME_BYTES + excess)
        with pytest.raises(TransportError, match="limit"):
            _read_sync(header)
        with pytest.raises(TransportError, match="limit"):
            _read_async(header)

    @given(blob=st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_garbage_bytes_are_typed(self, blob):
        try:
            decoded = json.loads(blob)
        except ValueError:
            decoded = None
        if isinstance(decoded, dict):
            return  # accidentally valid — covered by the roundtrip test
        payload = struct.pack(">I", len(blob)) + blob
        with pytest.raises(TransportError):
            _read_sync(payload)
        with pytest.raises(TransportError):
            _read_async(payload)

    @given(value=st.one_of(st.integers(), st.text(max_size=8),
                           st.lists(st.integers(), max_size=4)))
    @settings(max_examples=30, deadline=None)
    def test_non_object_json_rejected(self, value):
        blob = json.dumps(value).encode("utf-8")
        payload = struct.pack(">I", len(blob)) + blob
        with pytest.raises(TransportError, match="expected an"):
            _read_sync(payload)
        with pytest.raises(TransportError, match="expected an"):
            _read_async(payload)

    def test_interleaved_ids_demultiplex_out_of_order(self):
        """A server answering ids in reverse order still pairs every
        reply with its request — the future-per-id map, in isolation."""
        async def go():
            parked = []

            async def backwards(reader, writer):
                # park all requests, then answer newest-first
                while True:
                    try:
                        msg = await read_frame_async(reader)
                    except TransportError:
                        return
                    parked.append(msg)
                    if len(parked) == 5:
                        for m in reversed(parked):
                            writer.write(encode_frame(
                                {"ok": True, "echo": m["tag"],
                                 "id": m["id"]}))
                        await writer.drain()

            server = await asyncio.start_server(backwards, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            transport = AsyncTcpTransport("127.0.0.1", port)
            replies = await asyncio.gather(
                *(transport.request({"op": "echo", "tag": i}, timeout=5)
                  for i in range(5)))
            await transport.close()
            server.close()
            await server.wait_closed()
            return replies

        replies = asyncio.run(go())
        assert [r["echo"] for r in replies] == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# the acceptance test: >= 8 in flight on ONE connection, one deadline
# expiry cancels only its own id
# ----------------------------------------------------------------------
class TestMultiplexedConnection:
    def test_eight_in_flight_one_deadline_expiry_spares_the_rest(self):
        requests = _distinct_requests(8)
        reference = _reference(requests)

        async def go():
            server = AsyncShardServer(solve_workers=1)
            await server.start()
            transport = AsyncTcpTransport(server.host, server.port)
            try:
                # occupy the single solve worker so everything queues
                blocker = asyncio.ensure_future(transport.request(
                    {"op": "sleep", "seconds": 1.2}, timeout=30))
                await asyncio.sleep(0.2)

                solves = [asyncio.ensure_future(
                    transport.request(_solve_msg(r), timeout=60))
                    for r in requests]
                # the doomed request: client gives up at 0.25s, server
                # cancels its queued job at 0.5s — both deadlines fire
                # while the worker is still busy elsewhere
                doomed = asyncio.ensure_future(transport.request(
                    {"op": "sleep", "seconds": 9,
                     "deadline": 0.5}, timeout=0.25))
                await asyncio.sleep(0.2)

                # all of it is in flight on this one connection NOW
                snap = (await transport.request(
                    {"op": "snapshot"}, timeout=5))["snapshot"]
                inflight = snap["async"]["inflight"]

                # a saturated shard still answers pings on the loop
                assert await transport.ping(timeout=1.0)

                with pytest.raises(TransportTimeout) as excinfo:
                    await doomed
                # ... and only that id died: every other request on the
                # same connection completes, results exact
                replies = await asyncio.gather(*solves)
                assert (await blocker)["ok"]
                return inflight, str(excinfo.value), replies, snap
            finally:
                await transport.close()

        inflight, timeout_text, replies, snap = asyncio.run(go())
        # blocker + 8 solves + doomed (+ the snapshot op itself)
        assert inflight >= 9
        assert snap["async"]["max_inflight"] >= 9
        assert "other in-flight requests unaffected" in timeout_text
        assert snap["metrics"]["gauges"]["mux_inflight_max"] >= 9
        for reply, ref in zip(replies, reference):
            assert reply["ok"]
            result = result_from_wire(reply["result"])
            assert isinstance(result.throughput, Fraction)
            assert result.throughput == ref.throughput

    def test_sync_peer_without_ids_served_strictly_in_order(self):
        """Old peers interoperate: the sync TcpTransport pipelines
        id-less frames and relies on in-order replies."""
        from repro.service import TcpTransport

        requests = _distinct_requests(3)
        reference = _reference(requests)
        server = AsyncShardServer(solve_workers=2).start_in_thread()
        try:
            transport = TcpTransport(server.host, server.port)
            assert transport.ping(timeout=2.0)
            replies = transport.request_many(
                [_solve_msg(r) for r in requests], timeout=60)
            transport.close()
            for reply, req, ref in zip(replies, requests, reference):
                assert reply["ok"]
                result = result_from_wire(reply["result"])
                assert result.fingerprint == req.fingerprint()
                assert result.throughput == ref.throughput
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
# deadline semantics through the sharded broker
# ----------------------------------------------------------------------
class TestServerSideDeadlines:
    def test_saturated_executor_answers_timeout_with_shard_id(self):
        request = _ms_request()
        reference = _reference([request])[0]
        server = AsyncShardServer(solve_workers=1).start_in_thread()
        blocker = connect_async(f"{server.host}:{server.port}")
        broker = ShardedBroker(shards=0,
                               shard_addresses=[f"{server.host}:"
                                                f"{server.port}"],
                               async_transport=True,
                               request_timeout=0.4)
        try:
            # saturate the single solve worker from a separate channel
            hold = threading.Thread(
                target=lambda: blocker.request(
                    {"op": "sleep", "seconds": 1.5}, timeout=30))
            hold.start()
            time.sleep(0.2)

            started = time.perf_counter()
            with pytest.raises(ShardTimeoutError) as excinfo:
                broker.solve(request)
            elapsed = time.perf_counter() - started
            # answered by the server at ~0.4s, not by a client-side
            # guess at 0.4 + grace
            assert elapsed < 1.0
            assert excinfo.value.shard == 0
            assert excinfo.value.server_reported

            hold.join()
            # the shard was never ejected and the connection never
            # poisoned: the same broker solves the same request fine
            result = broker.solve(request)
            assert result.throughput == reference.throughput
            health = broker.snapshot()["shard_health"]
            assert health["shard_timeouts"] >= 1
            assert all(s["active"] for s in health["shards"])
        finally:
            broker.close()
            blocker.close()
            server.shutdown()


# ----------------------------------------------------------------------
# cross-broker coalescing at the shard
# ----------------------------------------------------------------------
class TestCrossBrokerCoalescing:
    def test_two_brokers_one_hot_shard_single_engine_solve(self):
        request = _ms_request()
        reference = _reference([request])[0]
        server = AsyncShardServer(solve_workers=1).start_in_thread()
        address = f"{server.host}:{server.port}"
        blocker = connect_async(address)
        b1 = ShardedBroker(shards=0, shard_addresses=[address],
                           async_transport=True)
        b2 = ShardedBroker(shards=0, shard_addresses=[address],
                           async_transport=True)
        try:
            # park the solve worker so both brokers' requests are
            # provably concurrent at the shard
            hold = threading.Thread(
                target=lambda: blocker.request(
                    {"op": "sleep", "seconds": 1.0}, timeout=30))
            hold.start()
            time.sleep(0.2)

            results = [None, None]

            def run(i, broker):
                results[i] = broker.solve(request)

            t1 = threading.Thread(target=run, args=(0, b1))
            t2 = threading.Thread(target=run, args=(1, b2))
            t1.start(); t2.start()
            t1.join(); t2.join(); hold.join()

            # exactly ONE engine solve; the other broker coalesced
            snap = blocker.request({"op": "snapshot"},
                                   timeout=5)["snapshot"]
            endpoints = snap["metrics"]["endpoints"]
            assert endpoints["solve"]["count"] == 1
            assert snap["async"]["shard_coalesced"] == 1
            assert endpoints["coalesce.remote"]["count"] == 1

            # both brokers got Fraction-identical results
            for result in results:
                assert result is not None
                assert isinstance(result.throughput, Fraction)
                assert result.throughput == reference.throughput

            # the broker-side rollup surfaces the shard counter
            assert b1.snapshot()["shard_coalesced"] == 1
        finally:
            b1.close()
            b2.close()
            blocker.close()
            server.shutdown()


# ----------------------------------------------------------------------
# the sync bridge end to end: ShardedBroker rides the multiplexed wire
# ----------------------------------------------------------------------
class TestAsyncTransportSharded:
    def test_results_exactly_match_unsharded_broker(self):
        from repro.core.dag import TaskGraph

        requests = [
            _ms_request(),
            SolveRequest(problem="scatter",
                         platform=generators.paper_figure2_multicast(),
                         source="P0", targets=("P5", "P6")),
            SolveRequest(problem="broadcast",
                         platform=generators.chain(4), source="N0"),
            SolveRequest(problem="dag",
                         platform=generators.paper_figure1(), master="P1",
                         dag=TaskGraph.chain([1, 2], [1])),
        ]
        reference = _reference(requests)
        server = AsyncShardServer(solve_workers=2).start_in_thread()
        broker = ShardedBroker(shards=0,
                               shard_addresses=[f"{server.host}:"
                                                f"{server.port}"],
                               async_transport=True)
        try:
            out = broker.solve_batch(requests)
            for got, ref in zip(out, reference):
                assert got.fingerprint == ref.fingerprint
                assert got.throughput == ref.throughput
            snap = broker.snapshot()
            assert "shard_coalesced" in snap
            (shard_stats,) = snap["per_shard"]
            assert shard_stats["async"]["solve_workers"] == 2
        finally:
            broker.close()
            server.shutdown()


# ----------------------------------------------------------------------
# the asyncio HTTP front end
# ----------------------------------------------------------------------
class TestAsyncHttp:
    def _exchange(self, sock, request_bytes):
        sock.sendall(request_bytes)
        data = b""
        while b"\r\n\r\n" not in data:
            data += sock.recv(65536)
        head, _, rest = data.partition(b"\r\n\r\n")
        headers = dict(
            line.split(": ", 1)
            for line in head.decode().split("\r\n")[1:] if ": " in line)
        length = int(headers.get("Content-Length", "0"))
        while len(rest) < length:
            rest += sock.recv(65536)
        status = int(head.split(b" ", 2)[1])
        return status, headers, rest[:length]

    def test_keep_alive_connection_serves_many_requests(self):
        request = _ms_request()
        reference = _reference([request])[0]
        broker = Broker(executor="sync")
        server = AsyncServiceServer(broker=broker).start_in_thread()
        sock = socket.create_connection(("127.0.0.1", server.port), 5)
        try:
            status, headers, body = self._exchange(
                sock, b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            assert status == 200
            assert headers["Connection"] == "keep-alive"
            assert json.loads(body)["ok"]

            # a POST solve on the SAME socket
            payload = json.dumps(
                {"op": "solve",
                 "request": request_to_dict(request)}).encode()
            status, _, body = self._exchange(
                sock, b"POST /api HTTP/1.1\r\nHost: x\r\n"
                + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                + payload)
            assert status == 200
            from repro.platform.serialization import encode_weight
            assert (json.loads(body)["throughput"]
                    == encode_weight(reference.throughput))

            # gauges made it into the metrics snapshot
            status, _, body = self._exchange(
                sock, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            gauges = json.loads(body)["metrics"]["gauges"]
            assert gauges["http_inflight_max"] >= 1

            # Connection: close is honoured
            status, headers, body = self._exchange(
                sock, b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                      b"Connection: close\r\n\r\n")
            assert headers["Connection"] == "close"
            assert sock.recv(1) == b""  # server closed its end
        finally:
            sock.close()
            server.shutdown()
            broker.close()

    def test_unknown_method_and_path(self):
        broker = Broker(executor="sync")
        server = AsyncServiceServer(broker=broker).start_in_thread()
        sock = socket.create_connection(("127.0.0.1", server.port), 5)
        try:
            status, _, body = self._exchange(
                sock, b"PUT /api HTTP/1.1\r\nHost: x\r\n\r\n")
            assert status == 405
            status, _, body = self._exchange(
                sock, b"GET /no-such HTTP/1.1\r\nHost: x\r\n\r\n")
            assert status == 404
        finally:
            sock.close()
            server.shutdown()
            broker.close()

    def test_malformed_head_drops_connection(self):
        broker = Broker(executor="sync")
        server = AsyncServiceServer(broker=broker).start_in_thread()
        sock = socket.create_connection(("127.0.0.1", server.port), 5)
        try:
            sock.sendall(b"NONSENSE\r\n\r\n")
            assert sock.recv(1) == b""
        finally:
            sock.close()
            server.shutdown()
            broker.close()


# ----------------------------------------------------------------------
# contextvars: span context follows tasks, not just threads
# ----------------------------------------------------------------------
class TestContextvarPropagation:
    def test_span_context_flows_into_asyncio_tasks(self):
        from repro.service.tracing import current_trace, span, start_trace

        async def go():
            with start_trace("async-root") as trace:
                async def child():
                    # the task inherited the contextvar snapshot: the
                    # active trace is visible without explicit plumbing
                    assert current_trace() is trace
                    with span("task-child"):
                        await asyncio.sleep(0)
                    return True

                assert await asyncio.create_task(child())
            return trace

        trace = asyncio.run(go())
        names = {sp["name"] for sp in trace.span_wire()}
        assert "task-child" in names

    def test_thread_isolation_still_holds(self):
        from repro.service.tracing import current_span, start_trace

        seen = {}

        def other_thread():
            seen["span"] = current_span()

        with start_trace("main-thread"):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        # a fresh thread gets a fresh context: no leaked span
        assert seen["span"] is None
