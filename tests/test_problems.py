"""Registry + typed-spec tests: dispatch, capabilities, round-trips, warm.

The tentpole contract of PR 2: every problem is a typed
:class:`~repro.problems.specs.ProblemSpec` bound to a capability-declaring
solver in one registry, and the CLI / API / broker / incremental solver
all dispatch through it — so these tests drive each consumer through the
registry and assert the uniform behaviours (JSON round-trips, typed
validation errors, end-to-end servability, warm re-solve for every
``warm_resolve``-capable problem).
"""

from __future__ import annotations

import json
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scatter import solve_gather, solve_scatter
from repro.platform import generators
from repro.platform.serialization import platform_to_dict
from repro.problems import (
    GatherSpec,
    MasterSlaveSpec,
    ScatterSpec,
    SpecError,
    describe,
    legacy_entry_points,
    reconstructable_problems,
    registered_problems,
    resolve,
    solve,
    spec_from_request_fields,
    spec_from_wire,
)
from repro.service import Broker, IncrementalSolver, SolveRequest, handle_request
from repro.service.api import request_from_dict, request_to_dict
from repro.service.broker import BrokerError, execute_request, solution_throughput

ALL_PROBLEMS = frozenset({
    "master-slave", "scatter", "gather", "all-to-all", "broadcast",
    "reduce", "multicast", "dag", "multiport", "send-or-receive",
})


def _star2():
    return generators.star(2, bidirectional=True)


def _example(problem, platform=None):
    platform = platform if platform is not None else _star2()
    return resolve(problem).example(platform, "M", ("W1", "W2"))


# ----------------------------------------------------------------------
# registry contents + capabilities
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_ten_problems_registered(self):
        assert set(registered_problems()) == ALL_PROBLEMS

    def test_unknown_problem_is_a_typed_error(self):
        with pytest.raises(SpecError, match="unknown problem"):
            resolve("nope")

    def test_declared_capabilities(self):
        # every non-tree-packing LP problem is warm-capable (6 of 10)
        for problem in ("master-slave", "scatter", "gather", "all-to-all",
                        "multiport", "send-or-receive"):
            entry = resolve(problem)
            assert entry.capabilities.warm_resolve
            assert entry.warm_model is not None
        for problem in ("broadcast", "reduce", "multicast", "dag"):
            entry = resolve(problem)
            assert not entry.capabilities.warm_resolve
            assert entry.warm_model is None
        assert reconstructable_problems() == {
            "master-slave", "scatter", "gather", "all-to-all"
        }
        for problem in ALL_PROBLEMS:
            assert resolve(problem).capabilities.lp_structure

    def test_legacy_shim_is_built_from_the_registry(self):
        from repro.core import SOLVER_ENTRY_POINTS
        from repro.core.master_slave import solve_master_slave
        from repro.core.scatter import solve_gather as sg

        assert set(SOLVER_ENTRY_POINTS) == set(registered_problems())
        assert SOLVER_ENTRY_POINTS["master-slave"] is solve_master_slave
        assert SOLVER_ENTRY_POINTS["gather"] is sg
        assert legacy_entry_points() == dict(SOLVER_ENTRY_POINTS)

    def test_every_problem_servable_end_to_end(self):
        # mirror of the CI consistency step (python -m repro problems --check)
        for problem in registered_problems():
            spec = _example(problem)
            solution = execute_request(SolveRequest.from_spec(spec))
            assert solution_throughput(solution) >= 0, problem

    def test_solve_rejects_mismatched_spec_type(self):
        spec = MasterSlaveSpec(platform=_star2(), master="M")
        with pytest.raises(SpecError, match="expects a ScatterSpec"):
            resolve("scatter").solve(spec)

    def test_describe_is_json_safe_and_complete(self):
        meta = describe()
        json.dumps(meta)  # must not raise
        assert set(meta) == ALL_PROBLEMS
        assert meta["gather"]["capabilities"]["reconstructs_schedule"]
        assert meta["scatter"]["capabilities"]["warm_resolve"]
        scatter_fields = {f["name"]: f for f in meta["scatter"]["fields"]}
        assert scatter_fields["targets"]["required"]
        assert scatter_fields["ports"]["default"] == 1
        assert meta["gather"]["fields"][0]["role"] == "source (the sink)"


# ----------------------------------------------------------------------
# JSON round-trips (satellite: spec <-> wire is exact, for every problem)
# ----------------------------------------------------------------------
class TestSpecRoundTrip:
    def test_every_registered_problem_round_trips(self):
        platform = _star2()
        for problem in registered_problems():
            spec = _example(problem, platform)
            wire = spec.to_wire()
            json.dumps(wire)  # the envelope must be JSON-serialisable
            back = spec_from_wire(platform, wire)
            assert type(back) is type(spec), problem
            assert back.to_wire() == wire, problem

    def test_full_request_round_trip_preserves_fingerprint(self):
        for problem in registered_problems():
            req = SolveRequest.from_spec(_example(problem))
            back = request_from_dict(request_to_dict(req))
            assert back.fingerprint() == req.fingerprint(), problem
            again = request_from_dict(request_to_dict(back))
            assert request_to_dict(again) == request_to_dict(back), problem

    def test_request_fields_round_trip(self):
        # flat legacy fields -> typed spec -> flat fields is lossless
        platform = _star2()
        spec = spec_from_request_fields(
            "scatter", platform, source="M", targets=("W2", "W1"),
            options={"ports": "3", "port_model": "multiport",
                     "backend": "exact"},
        )
        assert spec.source_node() == "M"
        assert spec.target_nodes() == ("W2", "W1")
        assert spec.option_fields() == {"port_model": "multiport", "ports": 3}

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=4),
        ports=st.integers(min_value=1, max_value=3),
        port_model=st.sampled_from(["one-port", "send-or-receive",
                                    "multiport"]),
        data=st.data(),
    )
    def test_scatter_spec_wire_property(self, n, ports, port_model, data):
        platform = generators.star(n, bidirectional=True)
        workers = [f"W{k}" for k in range(1, n + 1)]
        targets = data.draw(st.lists(st.sampled_from(workers), min_size=1,
                                     unique=True))
        spec = ScatterSpec(platform=platform, source="M",
                           targets=tuple(targets),
                           port_model=port_model, ports=ports)
        wire = json.loads(json.dumps(spec.to_wire()))
        assert spec_from_wire(platform, wire).to_wire() == wire


# ----------------------------------------------------------------------
# typed validation (satellite: malformed specs never leak KeyError/etc.)
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_missing_required_fields(self):
        g = _star2()
        with pytest.raises(SpecError, match="scatter requests need targets"):
            ScatterSpec(platform=g, source="M", targets=())
        with pytest.raises(SpecError, match="need source/master"):
            MasterSlaveSpec(platform=g, master=None)
        with pytest.raises(SpecError, match=r"targets \(the sources\)"):
            GatherSpec(platform=g, sink="M", sources=())
        with pytest.raises(SpecError, match="need a task graph"):
            SolveRequest(problem="dag", platform=g, master="M")

    def test_unknown_options_are_typed_errors(self):
        g = _star2()
        with pytest.raises(SpecError, match="unknown option"):
            SolveRequest(problem="master-slave", platform=g, master="M",
                         options={"ports": 2})
        with pytest.raises(SpecError, match="unknown option"):
            SolveRequest(problem="broadcast", platform=g, source="M",
                         options={"typo_limit": 5})

    def test_ill_typed_options_are_typed_errors(self):
        g = _star2()
        with pytest.raises(SpecError, match="must be an integer"):
            SolveRequest(problem="multiport", platform=g, master="M",
                         options={"ports": "many"})
        with pytest.raises(SpecError, match="port model"):
            SolveRequest(problem="scatter", platform=g, source="M",
                         targets=("W1",), options={"port_model": "zero-port"})

    def test_fractional_int_options_are_rejected_not_truncated(self):
        g = _star2()
        with pytest.raises(SpecError, match="must be an integer"):
            SolveRequest(problem="multiport", platform=g, master="M",
                         options={"ports": 2.9})
        # integral floats (e.g. from a JSON producer emitting 2.0) are fine
        req = SolveRequest(problem="multiport", platform=g, master="M",
                           options={"ports": 2.0})
        assert req.option_dict()["ports"] == 2

    def test_misdirected_fields_are_typed_errors(self):
        g = _star2()
        with pytest.raises(SpecError, match="take no source"):
            SolveRequest(problem="all-to-all", platform=g, source="M")
        with pytest.raises(SpecError, match="take no targets"):
            SolveRequest(problem="master-slave", platform=g, master="M",
                         targets=("W1",))

    def test_broker_error_is_the_spec_error(self):
        # the broker's historical error type and the typed validation
        # error are one class: callers catching either see both layers
        assert BrokerError is SpecError

    def test_malformed_wire_specs_report_typed_errors(self):
        g = platform_to_dict(_star2())
        with Broker(executor="sync") as broker:
            cases = [
                {"spec": {"problem": "scatter", "source": "M"},
                 "platform": g},                                   # missing
                {"spec": {"problem": "scatter", "source": "M",
                          "targets": ["W1"], "bogus": 1},
                 "platform": g},                                   # unknown
                {"spec": {"problem": "gather", "sink": "M",
                          "sources": "W1"}, "platform": g},        # bare str
                {"spec": {"version": 99, "problem": "master-slave",
                          "master": "M"}, "platform": g},          # version
                {"spec": {"problem": "dag", "master": "M",
                          "dag": {"types": "oops"}}, "platform": g},
            ]
            for case in cases:
                out = handle_request(broker, {"op": "solve", "request": case})
                assert not out["ok"], case
                assert out["type"] == "SpecError", out


# ----------------------------------------------------------------------
# the versioned spec envelope on the wire
# ----------------------------------------------------------------------
class TestSpecEnvelope:
    def test_typed_envelope_solves(self):
        g = _star2()
        envelope = {"op": "solve", "request": {
            "spec": {"version": 1, "problem": "gather", "sink": "M",
                     "sources": ["W1", "W2"]},
            "platform": platform_to_dict(g),
        }}
        with Broker(executor="sync") as broker:
            out = handle_request(broker, envelope)
            assert out["ok"], out
            assert Fraction(out["throughput"]) == solve_gather(
                g, "M", ["W1", "W2"]
            ).throughput

    def test_envelope_and_legacy_fields_share_fingerprints(self):
        g = platform_to_dict(_star2())
        legacy = request_from_dict({
            "problem": "scatter", "platform": g, "source": "M",
            "targets": ["W1", "W2"],
        })
        typed = request_from_dict({
            "spec": {"problem": "scatter", "source": "M",
                     "targets": ["W1", "W2"]},
            "platform": g,
        })
        assert legacy.fingerprint() == typed.fingerprint()

    def test_envelope_rejects_stray_legacy_fields_and_options(self):
        # nothing alongside a spec envelope may be silently ignored: a
        # half-migrated client must get an error, not a different solve
        g = platform_to_dict(_star2())
        with pytest.raises(BrokerError, match="legacy field"):
            request_from_dict({
                "spec": {"problem": "gather", "sink": "M",
                         "sources": ["W1"]},
                "platform": g, "source": "W2",
            })
        with pytest.raises(BrokerError, match="move .* into the spec"):
            request_from_dict({
                "spec": {"problem": "broadcast", "source": "M"},
                "platform": g, "options": {"tree_limit": 10},
            })
        # backend is the one execution option that stays outside the spec
        req = request_from_dict({
            "spec": {"problem": "broadcast", "source": "M"},
            "platform": g, "options": {"backend": "exact"},
        })
        assert req.option_dict()["backend"] == "exact"

    def test_conflicting_problem_names_rejected(self):
        g = platform_to_dict(_star2())
        with pytest.raises(BrokerError, match="spec envelope says"):
            request_from_dict({
                "problem": "scatter",
                "spec": {"problem": "gather", "sink": "M",
                         "sources": ["W1"]},
                "platform": g,
            })

    def test_problems_op_lists_the_registry(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "problems"})
            assert out["ok"]
            assert set(out["problems"]) == ALL_PROBLEMS


# ----------------------------------------------------------------------
# warm re-solve as a declared capability (scatter + gather join SSMS)
# ----------------------------------------------------------------------
class TestWarmCollectives:
    def test_scatter_warm_resolve_equals_cold(self):
        fig2 = generators.paper_figure2_multicast()
        mutated = fig2.scale(comm="2/3", compute=2)
        with Broker(executor="sync") as broker:
            first = broker.solve(SolveRequest(
                problem="scatter", platform=fig2, source="P0",
                targets=("P5", "P6")))
            second = broker.solve(SolveRequest(
                problem="scatter", platform=mutated, source="P0",
                targets=("P5", "P6")))
            assert not first.warm and second.warm and not second.cached
            cold = solve_scatter(mutated, "P0", ["P5", "P6"])
            assert second.solution.throughput == cold.throughput
            second.solution.verify()

    def test_gather_warm_resolve_equals_cold(self):
        g = generators.star(3, bidirectional=True)
        with Broker(executor="sync") as broker:
            broker.solve(SolveRequest(problem="gather", platform=g,
                                      source="M",
                                      targets=("W1", "W2", "W3")))
            for factor in ("1/2", "3", "7/5"):
                mutated = g.scale(comm=factor)
                warm = broker.solve(SolveRequest(
                    problem="gather", platform=mutated, source="M",
                    targets=("W1", "W2", "W3")))
                assert warm.warm
                cold = solve_gather(mutated, "M", ["W1", "W2", "W3"])
                assert warm.solution.throughput == cold.throughput

    def test_incremental_solver_generic_spec_api(self):
        inc = IncrementalSolver()
        fig2 = generators.paper_figure2_multicast()
        spec = ScatterSpec(platform=fig2, source="P0", targets=("P5", "P6"))
        sol, warm = inc.solve_spec_ex(spec)
        assert not warm and inc.stats.full_rebuilds == 1
        assert inc.has_model_for(spec)
        mutated = ScatterSpec(platform=fig2.scale(comm="5/7"),
                              source="P0", targets=("P5", "P6"))
        sol2, warm2 = inc.solve_spec_ex(mutated)
        assert warm2 and inc.stats.warm_solves == 1
        assert sol2.throughput == solve_scatter(
            mutated.platform, "P0", ["P5", "P6"]
        ).throughput

    def test_distinct_structures_do_not_collide(self):
        # same topology, different target sets / port models => different
        # hot models (the spec key is structural)
        inc = IncrementalSolver()
        g = generators.star(3, bidirectional=True)
        inc.solve_spec(ScatterSpec(platform=g, source="M",
                                   targets=("W1", "W2")))
        inc.solve_spec(ScatterSpec(platform=g, source="M",
                                   targets=("W1", "W2", "W3")))
        inc.solve_spec(GatherSpec(platform=g, sink="M",
                                  sources=("W1", "W2")))
        assert len(inc) == 3
        assert inc.stats.full_rebuilds == 3 and inc.stats.warm_solves == 0

    def test_topology_change_falls_back_for_scatter(self):
        inc = IncrementalSolver()
        inc.solve_spec(ScatterSpec(
            platform=generators.star(3, bidirectional=True),
            source="M", targets=("W1", "W2")))
        bigger = generators.star(4, bidirectional=True)
        sol = inc.solve_spec(ScatterSpec(platform=bigger, source="M",
                                         targets=("W1", "W2")))
        assert inc.stats.full_rebuilds == 2 and inc.stats.warm_solves == 0
        assert sol.throughput == solve_scatter(bigger, "M",
                                               ["W1", "W2"]).throughput

    def test_non_warm_capable_spec_is_a_typed_error(self):
        inc = IncrementalSolver()
        from repro.problems import BroadcastSpec

        with pytest.raises(SpecError, match="warm_resolve"):
            inc.solve_spec(BroadcastSpec(platform=_star2(), source="M"))

    def test_forget_drops_all_roots_of_a_topology(self):
        inc = IncrementalSolver()
        g = generators.star(3, bidirectional=True)
        inc.solve_spec(MasterSlaveSpec(platform=g, master="M"))
        inc.solve_spec(GatherSpec(platform=g, sink="M",
                                  sources=("W1", "W2")))
        assert inc.forget(g) == 2
        assert len(inc) == 0


# ----------------------------------------------------------------------
# gather through the full service path (schedule included)
# ----------------------------------------------------------------------
class TestGatherService:
    def test_gather_include_schedule_through_broker(self):
        g = generators.star(3, bidirectional=True)
        with Broker(executor="sync") as broker:
            res = broker.solve(SolveRequest(
                problem="gather", platform=g, source="M",
                targets=("W1", "W2", "W3"), include_schedule=True))
            assert res.schedule is not None
            assert res.schedule.throughput == res.solution.throughput
            delivered = sum(
                (rate for _, rate in res.schedule.routes["W1"]),
                start=Fraction(0),
            )
            assert delivered == res.solution.throughput * res.schedule.period

    def test_gather_schedule_over_the_wire(self):
        g = generators.star(2, bidirectional=True)
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "request": {
                "spec": {"problem": "gather", "sink": "M",
                         "sources": ["W1", "W2"]},
                "platform": platform_to_dict(g),
                "include_schedule": True,
            }})
            assert out["ok"], out
            assert "schedule" in out
