"""Sharded-broker tests: routing, aggregation, invalidation, process mode,
remote TCP shards, health/failover."""

from __future__ import annotations

import json
import multiprocessing
import socket
import time
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import TaskGraph
from repro.platform import generators
from repro.platform.serialization import platform_to_dict
from repro.service import (
    Broker,
    BrokerResult,
    HashRing,
    ShardedBroker,
    ShardTimeoutError,
    SolveRequest,
    handle_request,
    merge_snapshots,
)
from repro.service.broker import BrokerError


def _mixed_requests():
    """Requests across problem kinds whose throughputs are rich Fractions."""
    fig1 = generators.paper_figure1()
    fig2 = generators.paper_figure2_multicast()
    star_bi = generators.star(3, bidirectional=True)
    return [
        SolveRequest(problem="master-slave", platform=fig1, master="P1"),
        SolveRequest(problem="scatter", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="gather", platform=star_bi, source="M",
                     targets=("W1", "W2", "W3")),
        SolveRequest(problem="broadcast", platform=generators.chain(4),
                     source="N0"),
        SolveRequest(problem="multicast", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="dag", platform=fig1, master="P1",
                     dag=TaskGraph.chain([1, 2], [1])),
        SolveRequest(problem="master-slave",
                     platform=generators.star(4, master_w=2,
                                              worker_w=[1, 2, 3, 4],
                                              link_c=[1, 1, 2, 3]),
                     master="M"),
    ]


def _reference_results(requests):
    with Broker(executor="sync") as broker:
        return [broker.solve(r) for r in requests]


# ----------------------------------------------------------------------
# the consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_routing_is_stable_across_instances(self):
        fps = [r.fingerprint() for r in _mixed_requests()]
        a, b = HashRing(4), HashRing(4)
        assert [a.route(fp) for fp in fps] == [b.route(fp) for fp in fps]

    def test_all_shards_reachable(self):
        import hashlib

        fps = [hashlib.sha256(str(i).encode()).hexdigest()
               for i in range(512)]
        ring = HashRing(4)
        owners = {ring.route(fp) for fp in fps}
        assert owners == {0, 1, 2, 3}
        # and no shard is grossly overloaded (consistent hashing with
        # replicas keeps the spread within a small factor of fair share)
        counts = [sum(1 for fp in fps if ring.route(fp) == s)
                  for s in range(4)]
        assert min(counts) >= 512 / 4 / 4

    def test_growing_the_ring_moves_a_minority_of_keys(self):
        import hashlib

        fps = [hashlib.sha256(str(i).encode()).hexdigest()
               for i in range(512)]
        before, after = HashRing(4), HashRing(5)
        moved = sum(1 for fp in fps if before.route(fp) != after.route(fp))
        # ideal is 1/5 of the keyspace; modulo hashing would move ~4/5
        assert moved / len(fps) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            ShardedBroker(shards=2, shard_mode="quantum")


# ----------------------------------------------------------------------
# thread shards
# ----------------------------------------------------------------------
class TestShardedBrokerThread:
    def test_results_exactly_match_single_broker(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            out = sharded.solve_batch(requests)
            for ref, got in zip(reference, out):
                assert got.fingerprint == ref.fingerprint
                assert got.throughput == ref.throughput  # Fraction-exact

    def test_identical_requests_route_to_one_shard(self):
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1")
            twin = SolveRequest(problem="master-slave",
                                platform=generators.paper_figure1(),
                                master="P1")
            assert (sharded.shard_for(req.fingerprint())
                    == sharded.shard_for(twin.fingerprint()))
            sharded.solve(req)
            hit = sharded.solve(twin)
            assert hit.cached  # same shard, same cache entry
            snap = sharded.snapshot()
            assert snap["cache"]["misses"] == 1
            assert snap["cache"]["hits"] == 1

    def test_snapshot_aggregates_across_shards(self):
        requests = _mixed_requests()
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            sharded.solve_batch(requests)
            sharded.solve_batch(requests)  # second pass: all hits
            snap = sharded.snapshot()
            assert snap["shards"] == 4 and snap["shard_mode"] == "thread"
            assert snap["cache"]["misses"] == len(requests)
            assert snap["cache"]["hits"] == len(requests)
            assert (snap["metrics"]["total_requests"]
                    >= 2 * len(requests))
            assert len(snap["per_shard"]) == 4
            # the per-shard breakdown sums to the aggregate
            assert (sum(s["misses"] for s in snap["per_shard"])
                    == snap["cache"]["misses"])
            occupied = [s for s in snap["per_shard"] if s["requests"]]
            assert len(occupied) >= 2  # the mix spreads across shards
            json.dumps(snap)  # JSON-safe end to end

    def test_invalidate_fans_out_to_every_shard(self):
        fig1 = generators.paper_figure1()
        variants = [
            SolveRequest(problem="master-slave", platform=fig1, master="P1"),
            SolveRequest(problem="master-slave", platform=fig1, master="P2"),
            SolveRequest(problem="send-or-receive", platform=fig1,
                         master="P1"),
            SolveRequest(problem="multiport", platform=fig1, master="P1",
                         options={"ports": 2}),
        ]
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            sharded.solve_batch(variants)
            shards_used = {sharded.shard_for(r.fingerprint())
                           for r in variants}
            assert len(shards_used) >= 2  # the fan-out is actually needed
            assert sharded.invalidate_platform(fig1) == len(variants)
            for req in variants:
                assert not sharded.solve(req).cached

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_clear_drops_every_shard(self, mode):
        requests = _mixed_requests()[:4]
        with ShardedBroker(shards=2, shard_mode=mode) as sharded:
            sharded.solve_batch(requests)
            assert sharded.clear() == len(
                {r.fingerprint() for r in requests}
            )
            assert sharded.cache.snapshot()["size"] == 0
            assert all(not sharded.solve(r).cached for r in requests)

    def test_single_shard_is_a_valid_degenerate(self):
        with ShardedBroker(shards=1, shard_mode="thread") as sharded:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1")
            assert sharded.solve(req).throughput == Fraction(2)
            assert sharded.solve(req).cached


# ----------------------------------------------------------------------
# process shards (wire-codec dispatch to long-lived workers)
# ----------------------------------------------------------------------
class TestShardedBrokerProcess:
    def test_results_exactly_match_single_broker(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=2, shard_mode="process",
                           cache_size=32) as sharded:
            out = sharded.solve_batch(requests)
            for ref, got in zip(reference, out):
                assert isinstance(got, BrokerResult)
                assert got.fingerprint == ref.fingerprint
                assert got.throughput == ref.throughput  # Fraction-exact
            # second pass is served from the workers' own caches
            again = sharded.solve_batch(requests)
            assert all(r.cached for r in again)

    def test_worker_state_stays_hot_across_calls(self):
        g = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                            link_c=[1, 1, 2, 3])
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            sharded.solve(SolveRequest(problem="master-slave", platform=g,
                                       master="M"))
            mutated = g.scale(compute="3/2", comm="2/3")
            warm = sharded.solve(SolveRequest(problem="master-slave",
                                              platform=mutated, master="M"))
            snap = sharded.snapshot()
            # weight-only mutation: either the same shard re-used its hot
            # model (warm) or another shard built fresh — but when it IS
            # warm, the hot model demonstrably survived between calls
            if warm.warm:
                assert snap["incremental"]["warm_solves"] >= 1
            from repro.core.master_slave import solve_master_slave

            assert (warm.solution.throughput
                    == solve_master_slave(mutated, "M").throughput)

    def test_include_schedule_roundtrips_through_the_pipe(self):
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1", include_schedule=True)
            res = sharded.solve(req)
            assert res.schedule is not None
            assert res.schedule.throughput == res.solution.throughput

    def test_invalidate_fans_out(self):
        fig1 = generators.paper_figure1()
        variants = [
            SolveRequest(problem="master-slave", platform=fig1, master="P1"),
            SolveRequest(problem="master-slave", platform=fig1, master="P2"),
            SolveRequest(problem="send-or-receive", platform=fig1,
                         master="P1"),
        ]
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            sharded.solve_batch(variants)
            assert sharded.invalidate_platform(fig1) == len(variants)
            assert all(not sharded.solve(r).cached for r in variants)

    def test_spec_error_surfaces_as_broker_error(self):
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            good = SolveRequest(problem="master-slave",
                                platform=generators.star(2), master="M")
            from repro.service.api import request_to_dict

            # a tampered wire payload sent straight to a shard: the
            # *worker* decodes, rejects, and the error crosses the pipe
            payload = request_to_dict(good)
            payload["spec"]["problem"] = "nope"
            with pytest.raises(BrokerError, match="unknown problem"):
                sharded._transport_shards[0].call(
                    {"op": "solve", "fp": good.fingerprint(),
                     "request": payload})

    def test_worker_error_preserves_original_type(self):
        from repro.service import ShardError

        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            with pytest.raises(ShardError) as err:
                # worker-side PlatformError (not a SpecError): the relayed
                # exception must report the ORIGINAL class name, so the
                # JSON API's "type" field matches the unsharded broker
                sharded._transport_shards[0].call(
                    {"op": "invalidate", "platform": {"nodes": 12}})
            assert type(err.value).__name__ == "PlatformError"

    def test_close_is_idempotent_and_workers_exit(self):
        sharded = ShardedBroker(shards=2, shard_mode="process")
        procs = [s.process for s in sharded._transport_shards]
        sharded.close()
        sharded.close()
        assert all(not p.is_alive() for p in procs)


# ----------------------------------------------------------------------
# the batched pipe protocol (solve_many)
# ----------------------------------------------------------------------
class TestSolveMany:
    def test_batch_is_one_round_trip_per_shard(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            before = sharded.ipc_round_trips
            results = sharded.solve_batch(requests)
            used = sharded.ipc_round_trips - before
            # one solve_many per shard that owns part of the batch — not
            # one round-trip per request
            assert used <= sharded.shards < len(requests)
            for ref, got in zip(reference, results):
                assert got.throughput == ref.throughput  # Fraction-exact
                assert got.fingerprint == ref.fingerprint

    def test_intra_batch_duplicates_hit_the_shard_cache(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.star(3), master="M")
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            results = sharded.solve_batch([req, req, req])
            assert not results[0].cached
            assert results[1].cached and results[2].cached
            assert len({r.throughput for r in results}) == 1

    def test_per_item_errors_are_isolated_in_the_reply(self):
        good = SolveRequest(problem="master-slave",
                            platform=generators.star(2), master="M")
        from repro.service.api import request_to_dict
        from repro.service.wire import result_from_wire

        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            bad = request_to_dict(good)
            bad["spec"]["problem"] = "nope"
            reply = sharded._transport_shards[0].call({
                "op": "solve_many",
                "items": [
                    {"fp": good.fingerprint(),
                     "request": request_to_dict(good)},
                    {"fp": "bogus", "request": bad},
                ],
            })
            ok, err = reply["results"]
            # replies are JSON-safe wire dicts (no pickle on any backend)
            assert ok["ok"] and isinstance(
                result_from_wire(ok["result"]), BrokerResult
            )
            assert not err["ok"] and err["type"] == "SpecError"

    def test_ipc_counter_grows_per_unbatched_solve(self):
        requests = _mixed_requests()[:4]
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            before = sharded.ipc_round_trips
            for request in requests:
                sharded.solve(request)
            assert sharded.ipc_round_trips - before == len(requests)

    def test_thread_mode_has_no_ipc(self):
        with ShardedBroker(shards=2, shard_mode="thread") as sharded:
            sharded.solve_batch(_mixed_requests()[:3])
            assert sharded.ipc_round_trips == 0


# ----------------------------------------------------------------------
# the JSON API over a sharded broker
# ----------------------------------------------------------------------
class TestShardedApi:
    def _envelope(self):
        return {"op": "solve", "request": {
            "problem": "master-slave",
            "platform": platform_to_dict(generators.paper_figure1()),
            "master": "P1"}}

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_handle_request_ops(self, mode):
        with ShardedBroker(shards=2, shard_mode=mode) as sharded:
            out = handle_request(sharded, self._envelope())
            assert out["ok"] and Fraction(out["throughput"]) == Fraction(2)
            again = handle_request(sharded, self._envelope())
            assert again["cached"]
            metrics = handle_request(sharded, {"op": "metrics"})
            assert metrics["ok"] and metrics["shards"] == 2
            assert metrics["metrics"]["total_requests"] >= 2
            cache = handle_request(sharded, {"op": "cache"})
            assert cache["cache"]["size"] == 1
            inv = handle_request(sharded, {
                "op": "invalidate",
                "platform": platform_to_dict(generators.paper_figure1())})
            assert inv["invalidated"] == 1
            bad = handle_request(sharded, {"op": "solve", "request": {
                "problem": "nope",
                "platform": platform_to_dict(generators.star(2)),
                "master": "M"}})
            assert not bad["ok"] and bad["status"] == 422


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestServeCli:
    def test_executor_flag_rejected_with_shards(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--shard-mode"):
            main(["serve", "--stdio", "--shards", "2",
                  "--executor", "process"])

    def test_sharded_stdio_roundtrip(self, capsys):
        import io
        import sys as _sys

        from repro.cli import main

        lines = json.dumps({"op": "ping"}) + "\n" + json.dumps(
            {"op": "shutdown"}) + "\n"
        old_stdin = _sys.stdin
        _sys.stdin = io.StringIO(lines)
        try:
            rc = main(["serve", "--stdio", "--shards", "2"])
        finally:
            _sys.stdin = old_stdin
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert json.loads(out[0])["pong"]


# ----------------------------------------------------------------------
# metrics snapshot merging
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def test_counts_sum_and_rates_rederive(self):
        from repro.service import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        for ms in (1, 2, 3):
            a.observe("solve", ms / 1000)
        b.observe("solve", 0.004)
        b.observe("solve", 0.1, error=True)
        b.observe("ping", 0.001)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        ep = merged["endpoints"]["solve"]
        assert ep["count"] == 5 and ep["errors"] == 1
        assert ep["total_seconds"] == pytest.approx(0.110)
        assert ep["min_seconds"] == pytest.approx(0.001)
        assert ep["max_seconds"] == pytest.approx(0.1)
        assert merged["total_requests"] == 6
        assert merged["requests_per_second"] > 0

    def test_empty_merge(self):
        merged = merge_snapshots([])
        assert merged["total_requests"] == 0
        assert merged["endpoints"] == {}

    def test_dotted_subtimers_not_double_counted(self):
        from repro.service import MetricsRegistry

        reg = MetricsRegistry()
        reg.observe("solve", 0.001)
        reg.observe("solve.cold", 0.001)
        merged = merge_snapshots([reg.snapshot(), reg.snapshot()])
        assert merged["total_requests"] == 2
        assert "solve.cold" in merged["endpoints"]

    def test_all_none_percentiles_stay_none(self):
        """Merging endpoints whose windows never filled keeps p50/p99 None
        instead of raising or inventing zeros."""
        from repro.service import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        snap_a, snap_b = a.snapshot(), b.snapshot()
        # Simulate a shard that reports the endpoint but no latency window.
        snap_a["endpoints"]["solve"] = ({
            "count": 0, "errors": 0, "total_seconds": 0.0,
            "mean_seconds": None, "min_seconds": None, "max_seconds": None,
            "p50_seconds": None, "p99_seconds": None, "window": 0,
        })
        merged = merge_snapshots([snap_a, snap_b])
        ep = merged["endpoints"]["solve"]
        assert ep["p50_seconds"] is None
        assert ep["p99_seconds"] is None
        assert ep["min_seconds"] is None and ep["max_seconds"] is None

    def test_caller_uptime_overrides_shard_max(self):
        """requests_per_second derives from the caller's uptime, not the
        max of shard uptimes (shards may have started long before the
        router)."""
        from repro.service import MetricsRegistry

        fake_now = [100.0]
        reg = MetricsRegistry(clock=lambda: fake_now[0])
        fake_now[0] = 1100.0  # shard claims 1000s of uptime
        reg.observe("solve", 0.001)
        snap = reg.snapshot()
        assert snap["uptime_seconds"] == pytest.approx(1000.0)

        merged = merge_snapshots([snap], uptime_seconds=10.0)
        assert merged["uptime_seconds"] == pytest.approx(10.0)
        assert merged["requests_per_second"] == pytest.approx(0.1)

        fallback = merge_snapshots([snap])
        assert fallback["requests_per_second"] == pytest.approx(0.001)


# ----------------------------------------------------------------------
# HashRing properties (what failover's minimal disruption relies on)
# ----------------------------------------------------------------------
def _fingerprints(n: int, salt: str = "") -> list:
    import hashlib

    return [hashlib.sha256(f"{salt}{i}".encode()).hexdigest()
            for i in range(n)]


class TestHashRingProperties:
    @settings(max_examples=25, deadline=None)
    @given(shards=st.integers(min_value=2, max_value=12),
           salt=st.text(alphabet="abcdef", min_size=0, max_size=6))
    def test_keys_balance_within_tolerance(self, shards, salt):
        """No shard owns a grossly unfair share of a uniform keyspace."""
        fps = _fingerprints(64 * shards, salt)
        ring = HashRing(shards)
        counts = [0] * shards
        for fp in fps:
            counts[ring.route(fp)] += 1
        fair = len(fps) / shards
        assert min(counts) >= fair / 4  # every shard carries real load
        assert max(counts) <= fair * 4  # nobody is a hot spot

    @settings(max_examples=25, deadline=None)
    @given(shards=st.integers(min_value=2, max_value=10),
           removed=st.integers(min_value=0, max_value=9))
    def test_removing_one_shard_remaps_only_its_keys(self, shards,
                                                     removed):
        """The minimal-disruption invariant: ejecting shard ``r`` moves
        exactly the keys ``r`` owned; every other key keeps its owner."""
        removed %= shards
        fps = _fingerprints(256)
        ring = HashRing(shards)
        for fp in fps:
            before = ring.route(fp)
            after = ring.route(fp, skip={removed})
            if before != removed:
                assert after == before  # untouched by the ejection
            else:
                assert after != removed  # found a live stand-in

    @settings(max_examples=10, deadline=None)
    @given(shards=st.integers(min_value=2, max_value=8))
    def test_skipped_keys_spread_over_survivors(self, shards):
        """An ejected shard's keys fan out across the survivors (ring
        replicas), they do not all pile onto one neighbour."""
        if shards < 3:
            return
        fps = _fingerprints(512)
        ring = HashRing(shards)
        heirs = {ring.route(fp, skip={0})
                 for fp in fps if ring.route(fp) == 0}
        assert len(heirs) >= 2

    def test_all_shards_skipped_raises(self):
        ring = HashRing(3)
        with pytest.raises(ValueError, match="excluded"):
            ring.route("ab" * 32, skip={0, 1, 2})

    def test_empty_skip_matches_plain_route(self):
        ring = HashRing(5)
        for fp in _fingerprints(64):
            assert ring.route(fp) == ring.route(fp, skip=set())

    # ---- successors: the replica sets hot-key replication fans to ----
    @settings(max_examples=25, deadline=None)
    @given(shards=st.integers(min_value=2, max_value=10),
           count=st.integers(min_value=1, max_value=12),
           salt=st.text(alphabet="abcdef", min_size=0, max_size=6))
    def test_successors_distinct_live_and_first_is_route(self, shards,
                                                         count, salt):
        """R distinct shards, never more than live, headed by route()."""
        ring = HashRing(shards)
        for fp in _fingerprints(32, salt):
            replicas = ring.successors(fp, count)
            assert len(replicas) == min(count, shards)
            assert len(set(replicas)) == len(replicas)  # all distinct
            assert replicas[0] == ring.route(fp)

    @settings(max_examples=25, deadline=None)
    @given(shards=st.integers(min_value=2, max_value=10),
           count=st.integers(min_value=1, max_value=10))
    def test_successors_agree_with_route_skip_walk(self, shards, count):
        """The replica list IS the route() failover walk: each entry is
        what route(fp, skip=<earlier entries>) would pick next."""
        ring = HashRing(shards)
        for fp in _fingerprints(24):
            replicas = ring.successors(fp, count)
            walked = []
            for _ in range(len(replicas)):
                walked.append(ring.route(fp, skip=set(walked)))
            assert replicas == walked

    @settings(max_examples=25, deadline=None)
    @given(shards=st.integers(min_value=3, max_value=10),
           count=st.integers(min_value=2, max_value=6),
           ejected=st.integers(min_value=0, max_value=9))
    def test_successors_minimal_disruption_on_ejection(self, shards,
                                                       count, ejected):
        """Ejecting one shard removes only THAT shard from every key's
        replica walk — the surviving order is untouched."""
        ejected %= shards
        ring = HashRing(shards)
        for fp in _fingerprints(24):
            full = ring.successors(fp, shards)  # the whole walk
            survivors = [s for s in full if s != ejected]
            assert (ring.successors(fp, count, skip={ejected})
                    == survivors[:count])

    @settings(max_examples=25, deadline=None)
    @given(shards=st.integers(min_value=2, max_value=10),
           count=st.integers(min_value=1, max_value=8))
    def test_successors_prefix_stable_in_count(self, shards, count):
        """Raising the replication factor appends replicas, never
        reshuffles the ones already placed."""
        ring = HashRing(shards)
        for fp in _fingerprints(24):
            assert (ring.successors(fp, count + 1)[:count]
                    == ring.successors(fp, count))

    def test_successors_validation(self):
        ring = HashRing(3)
        fp = "ab" * 32
        with pytest.raises(ValueError):
            ring.successors(fp, 0)
        with pytest.raises(ValueError, match="excluded"):
            ring.successors(fp, 2, skip={0, 1, 2})
        # fewer live shards than asked for: return what exists
        assert len(ring.successors(fp, 3, skip={0})) == 2


# ----------------------------------------------------------------------
# supervision: worker death, restart, timeout (local pipe shards)
# ----------------------------------------------------------------------
class TestLocalShardSupervision:
    def test_worker_death_restarts_once_and_request_survives(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.paper_figure1(),
                           master="P1")
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            reference = sharded.solve(req)
            old_pids = [s.process.pid for s in sharded._transport_shards]
            for shard in sharded._transport_shards:  # kill every worker
                shard.process.kill()
                shard.process.join()
            # no lost request: the owning shard is restarted (fresh
            # cache, so a cold re-solve) and answers identically
            again = sharded.solve(req)
            assert again.throughput == reference.throughput
            assert not again.cached
            health = sharded.shard_health()
            assert health["shard_failures"] >= 1
            assert health["shard_restarts"] >= 1
            new_pids = [s.process.pid for s in sharded._transport_shards]
            assert any(a != b for a, b in zip(old_pids, new_pids))

    def test_death_mid_request_is_a_typed_shard_error_not_eof(self):
        """The PR 3 bug: a worker dying mid-request surfaced as a raw
        EOFError from the pipe.  It must be a counted, typed failure
        (and here — with a live sibling shard — a transparent failover,
        so the caller sees no error at all)."""
        req = SolveRequest(problem="master-slave",
                           platform=generators.star(3), master="M")
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            shard = sharded._transport_shards[
                sharded.shard_for(req.fingerprint())
            ]
            shard.process.kill()
            shard.process.join()
            result = sharded.solve(req)  # restart + retry, not EOFError
            assert result.throughput == _reference_results([req])[0].throughput
            assert sharded.shard_health()["shard_failures"] >= 1
            snap = sharded.snapshot()
            assert snap["shard_health"]["shard_restarts"] >= 1

    def test_request_timeout_fails_over_then_raises_typed(self):
        with ShardedBroker(shards=1, shard_mode="process",
                           request_timeout=0.3) as sharded:
            with pytest.raises(ShardTimeoutError) as err:
                sharded._routed_call("0" * 64,
                                     {"op": "sleep", "seconds": 10.0})
            assert err.value.shard == 0
            # the hung worker was replaced; the shard still serves
            req = SolveRequest(problem="master-slave",
                               platform=generators.star(2), master="M")
            assert sharded.solve(req).throughput == Fraction(2)
            health = sharded.shard_health()
            assert health["shard_timeouts"] >= 1
            assert health["shard_restarts"] >= 1

    def test_invalidation_survives_a_dead_shard(self):
        fig1 = generators.paper_figure1()
        variants = [
            SolveRequest(problem="master-slave", platform=fig1,
                         master="P1"),
            SolveRequest(problem="master-slave", platform=fig1,
                         master="P2"),
            SolveRequest(problem="send-or-receive", platform=fig1,
                         master="P1"),
        ]
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            sharded.solve_batch(variants)
            for shard in sharded._transport_shards:
                shard.process.kill()
                shard.process.join()
            # must not raise — dead workers are restarted with empty
            # caches, which is invalidation by rebirth
            removed = sharded.invalidate_platform(fig1)
            assert removed >= 0
            assert all(not sharded.solve(r).cached for r in variants)

    def test_metrics_observe_transport_latency(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.star(2), master="M")
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            sharded.solve(req)
            endpoints = sharded.snapshot()["metrics"]["endpoints"]
            assert endpoints["transport.pipe"]["count"] >= 1


# ----------------------------------------------------------------------
# remote TCP shards on the ring
# ----------------------------------------------------------------------
def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _run_shard_server(port: int) -> None:  # pragma: no cover — child
    from repro.service import ShardServer

    server = ShardServer(("127.0.0.1", port))
    server.serve_forever()


def _start_shard_process(port: int) -> multiprocessing.Process:
    ctx = multiprocessing.get_context()
    process = ctx.Process(target=_run_shard_server, args=(port,),
                          daemon=True)
    process.start()
    deadline = time.time() + 20
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port),
                                     timeout=0.2).close()
            return process
        except OSError:
            time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"shard server on :{port} never became reachable")


class TestRemoteTcpShards:
    def test_mixed_ring_matches_single_broker_exactly(self):
        """Acceptance: a ShardedBroker spanning a TCP shard returns
        Fraction-identical results to the unsharded Broker."""
        requests = _mixed_requests()
        reference = _reference_results(requests)
        port = _free_port()
        server = _start_shard_process(port)
        try:
            with ShardedBroker(shards=1,
                               shard_addresses=[f"127.0.0.1:{port}"],
                               health_interval=0) as sharded:
                assert sharded.shards == 2
                out = sharded.solve_batch(requests)
                for ref, got in zip(reference, out):
                    assert got.fingerprint == ref.fingerprint
                    assert got.throughput == ref.throughput  # exact
                again = [sharded.solve(r) for r in requests]
                assert all(r.cached for r in again)
                kinds = {h["kind"] for h in
                         sharded.shard_health()["shards"]}
                assert kinds == {"pipe", "tcp"}
        finally:
            server.kill()
            server.join()

    def test_batch_over_tcp_is_one_round_trip_per_shard(self):
        requests = _mixed_requests()
        port = _free_port()
        server = _start_shard_process(port)
        try:
            with ShardedBroker(shards=0,
                               shard_addresses=[f"127.0.0.1:{port}"],
                               health_interval=0) as sharded:
                before = sharded.ipc_round_trips
                sharded.solve_batch(requests)
                assert sharded.ipc_round_trips - before == 1
        finally:
            server.kill()
            server.join()

    def test_kill_a_shard_mid_run_fails_over_without_losing_requests(self):
        """Acceptance: the workload completes via failover after a hard
        kill — ejection moves the dead shard's keys to survivors."""
        requests = _mixed_requests()
        reference = _reference_results(requests)
        ports = [_free_port(), _free_port()]
        servers = [_start_shard_process(p) for p in ports]
        try:
            with ShardedBroker(
                shards=0,
                shard_addresses=[f"127.0.0.1:{p}" for p in ports],
                health_interval=0,
            ) as sharded:
                warm = sharded.solve_batch(requests)
                assert all(g.throughput == r.throughput
                           for g, r in zip(warm, reference))
                servers[0].kill()
                servers[0].join()
                out = [sharded.solve(r) for r in requests]  # no losses
                for ref, got in zip(reference, out):
                    assert got.throughput == ref.throughput
                health = sharded.shard_health()
                assert health["shard_failures"] >= 1
                assert health["failovers"] >= 1
                states = {h["address"]: h["active"]
                          for h in health["shards"]}
                assert states[f"tcp://127.0.0.1:{ports[0]}"] is False
                assert states[f"tcp://127.0.0.1:{ports[1]}"] is True
                # metrics scrape survives the outage, flags the shard
                snap = sharded.snapshot()
                flags = [p.get("unreachable", False)
                         for p in snap["per_shard"]]
                assert flags.count(True) == 1
                # invalidation fan-out tolerates the dead shard too
                fig1 = generators.paper_figure1()
                assert sharded.invalidate_platform(fig1) >= 1
        finally:
            for server in servers:
                server.kill()
                server.join()

    def test_ejected_shard_rejoins_after_restart(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.paper_figure1(),
                           master="P1")
        port = _free_port()
        server = _start_shard_process(port)
        try:
            with ShardedBroker(
                shards=1,
                shard_addresses=[f"127.0.0.1:{port}"],
                health_interval=0.2,
            ) as sharded:
                sharded.solve(req)
                server.kill()
                server.join()
                # force the failure to be noticed (request path ejects)
                assert sharded.solve(req).throughput == Fraction(2)
                remote = sharded._transport_shards[1]
                assert not remote.active
                server = _start_shard_process(port)  # same address
                deadline = time.time() + 20
                while time.time() < deadline and not remote.active:
                    time.sleep(0.1)
                assert remote.active, "health probe never rejoined"
                assert sharded.shard_health()["rejoins"] >= 1
                assert sharded.solve(req).throughput == Fraction(2)
        finally:
            server.kill()
            server.join()

    def test_thread_mode_rejects_remote_addresses(self):
        with pytest.raises(ValueError, match="process"):
            ShardedBroker(shards=2, shard_mode="thread",
                          shard_addresses=["127.0.0.1:1"])

    def test_all_remote_ring_needs_an_address(self):
        with pytest.raises(ValueError):
            ShardedBroker(shards=0, shard_mode="process")


# ----------------------------------------------------------------------
# review-hardening regressions
# ----------------------------------------------------------------------
class TestTimeoutConfiguration:
    def test_thread_mode_rejects_request_timeout(self):
        with pytest.raises(ValueError, match="thread"):
            ShardedBroker(shards=2, shard_mode="thread",
                          request_timeout=5.0)

    def test_cli_rejects_shard_timeout_without_transport_shards(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="shard-timeout"):
            main(["serve", "--stdio", "--shards", "2",
                  "--shard-timeout", "5"])
        with pytest.raises(SystemExit, match="shard-timeout"):
            main(["serve", "--stdio", "--shard-timeout", "5"])

    def test_solve_many_timeout_scales_with_batch_size(self):
        """A batch whose total solve time exceeds one per-request budget
        must NOT time out its shard (the budget is per request)."""
        from repro.service.api import request_to_dict

        req = SolveRequest(problem="master-slave",
                           platform=generators.star(2), master="M")
        with ShardedBroker(shards=1, shard_mode="process",
                           request_timeout=0.5) as sharded:
            shard = sharded._transport_shards[0]
            seen = []
            original = shard.call

            def spying_call(msg, timeout=None):
                seen.append(timeout)
                return original(msg, timeout=timeout)

            shard.call = spying_call
            items = [{"fp": req.fingerprint(),
                      "request": request_to_dict(req)}
                     for _ in range(6)]
            reply = sharded._shard_call(shard,
                                        {"op": "solve_many",
                                         "items": items})
            assert len(reply["results"]) == 6
            assert seen == [6 * 0.5]  # the whole-batch budget
            sharded._shard_call(shard, {"op": "ping"})
            assert seen[-1] == 0.5  # single ops keep the per-request one


class TestSharedShardServerHealth:
    def test_ping_is_answered_while_the_engine_lock_is_held(self):
        """A shared TCP shard busy with another broker's long op must
        still answer health pings — busy is not dead."""
        import threading

        from repro.service import ShardServer, connect

        server = ShardServer(("127.0.0.1", 0))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            busy = connect(server.address)
            prober = connect(server.address)

            def hold_the_engine_lock():
                try:
                    busy.request({"op": "sleep", "seconds": 3.0})
                except Exception:  # noqa: BLE001 — torn down by the test
                    pass

            blocker = threading.Thread(target=hold_the_engine_lock,
                                       daemon=True)
            blocker.start()
            time.sleep(0.3)  # let the sleep op take the engine lock
            start = time.perf_counter()
            assert prober.ping(timeout=1.0)  # must not queue behind it
            assert time.perf_counter() - start < 1.0
            busy.close()
            prober.close()
        finally:
            server.shutdown()
            server.server_close()
