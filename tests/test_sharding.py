"""Sharded-broker tests: routing, aggregation, invalidation, process mode."""

from __future__ import annotations

import json
from fractions import Fraction

import pytest

from repro.core.dag import TaskGraph
from repro.platform import generators
from repro.platform.serialization import platform_to_dict
from repro.service import (
    Broker,
    BrokerResult,
    HashRing,
    ShardedBroker,
    SolveRequest,
    handle_request,
    merge_snapshots,
)
from repro.service.broker import BrokerError


def _mixed_requests():
    """Requests across problem kinds whose throughputs are rich Fractions."""
    fig1 = generators.paper_figure1()
    fig2 = generators.paper_figure2_multicast()
    star_bi = generators.star(3, bidirectional=True)
    return [
        SolveRequest(problem="master-slave", platform=fig1, master="P1"),
        SolveRequest(problem="scatter", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="gather", platform=star_bi, source="M",
                     targets=("W1", "W2", "W3")),
        SolveRequest(problem="broadcast", platform=generators.chain(4),
                     source="N0"),
        SolveRequest(problem="multicast", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="dag", platform=fig1, master="P1",
                     dag=TaskGraph.chain([1, 2], [1])),
        SolveRequest(problem="master-slave",
                     platform=generators.star(4, master_w=2,
                                              worker_w=[1, 2, 3, 4],
                                              link_c=[1, 1, 2, 3]),
                     master="M"),
    ]


def _reference_results(requests):
    with Broker(executor="sync") as broker:
        return [broker.solve(r) for r in requests]


# ----------------------------------------------------------------------
# the consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_routing_is_stable_across_instances(self):
        fps = [r.fingerprint() for r in _mixed_requests()]
        a, b = HashRing(4), HashRing(4)
        assert [a.route(fp) for fp in fps] == [b.route(fp) for fp in fps]

    def test_all_shards_reachable(self):
        import hashlib

        fps = [hashlib.sha256(str(i).encode()).hexdigest()
               for i in range(512)]
        ring = HashRing(4)
        owners = {ring.route(fp) for fp in fps}
        assert owners == {0, 1, 2, 3}
        # and no shard is grossly overloaded (consistent hashing with
        # replicas keeps the spread within a small factor of fair share)
        counts = [sum(1 for fp in fps if ring.route(fp) == s)
                  for s in range(4)]
        assert min(counts) >= 512 / 4 / 4

    def test_growing_the_ring_moves_a_minority_of_keys(self):
        import hashlib

        fps = [hashlib.sha256(str(i).encode()).hexdigest()
               for i in range(512)]
        before, after = HashRing(4), HashRing(5)
        moved = sum(1 for fp in fps if before.route(fp) != after.route(fp))
        # ideal is 1/5 of the keyspace; modulo hashing would move ~4/5
        assert moved / len(fps) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            ShardedBroker(shards=2, shard_mode="quantum")


# ----------------------------------------------------------------------
# thread shards
# ----------------------------------------------------------------------
class TestShardedBrokerThread:
    def test_results_exactly_match_single_broker(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            out = sharded.solve_batch(requests)
            for ref, got in zip(reference, out):
                assert got.fingerprint == ref.fingerprint
                assert got.throughput == ref.throughput  # Fraction-exact

    def test_identical_requests_route_to_one_shard(self):
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1")
            twin = SolveRequest(problem="master-slave",
                                platform=generators.paper_figure1(),
                                master="P1")
            assert (sharded.shard_for(req.fingerprint())
                    == sharded.shard_for(twin.fingerprint()))
            sharded.solve(req)
            hit = sharded.solve(twin)
            assert hit.cached  # same shard, same cache entry
            snap = sharded.snapshot()
            assert snap["cache"]["misses"] == 1
            assert snap["cache"]["hits"] == 1

    def test_snapshot_aggregates_across_shards(self):
        requests = _mixed_requests()
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            sharded.solve_batch(requests)
            sharded.solve_batch(requests)  # second pass: all hits
            snap = sharded.snapshot()
            assert snap["shards"] == 4 and snap["shard_mode"] == "thread"
            assert snap["cache"]["misses"] == len(requests)
            assert snap["cache"]["hits"] == len(requests)
            assert (snap["metrics"]["total_requests"]
                    >= 2 * len(requests))
            assert len(snap["per_shard"]) == 4
            # the per-shard breakdown sums to the aggregate
            assert (sum(s["misses"] for s in snap["per_shard"])
                    == snap["cache"]["misses"])
            occupied = [s for s in snap["per_shard"] if s["requests"]]
            assert len(occupied) >= 2  # the mix spreads across shards
            json.dumps(snap)  # JSON-safe end to end

    def test_invalidate_fans_out_to_every_shard(self):
        fig1 = generators.paper_figure1()
        variants = [
            SolveRequest(problem="master-slave", platform=fig1, master="P1"),
            SolveRequest(problem="master-slave", platform=fig1, master="P2"),
            SolveRequest(problem="send-or-receive", platform=fig1,
                         master="P1"),
            SolveRequest(problem="multiport", platform=fig1, master="P1",
                         options={"ports": 2}),
        ]
        with ShardedBroker(shards=4, shard_mode="thread") as sharded:
            sharded.solve_batch(variants)
            shards_used = {sharded.shard_for(r.fingerprint())
                           for r in variants}
            assert len(shards_used) >= 2  # the fan-out is actually needed
            assert sharded.invalidate_platform(fig1) == len(variants)
            for req in variants:
                assert not sharded.solve(req).cached

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_clear_drops_every_shard(self, mode):
        requests = _mixed_requests()[:4]
        with ShardedBroker(shards=2, shard_mode=mode) as sharded:
            sharded.solve_batch(requests)
            assert sharded.clear() == len(
                {r.fingerprint() for r in requests}
            )
            assert sharded.cache.snapshot()["size"] == 0
            assert all(not sharded.solve(r).cached for r in requests)

    def test_single_shard_is_a_valid_degenerate(self):
        with ShardedBroker(shards=1, shard_mode="thread") as sharded:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1")
            assert sharded.solve(req).throughput == Fraction(2)
            assert sharded.solve(req).cached


# ----------------------------------------------------------------------
# process shards (wire-codec dispatch to long-lived workers)
# ----------------------------------------------------------------------
class TestShardedBrokerProcess:
    def test_results_exactly_match_single_broker(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=2, shard_mode="process",
                           cache_size=32) as sharded:
            out = sharded.solve_batch(requests)
            for ref, got in zip(reference, out):
                assert isinstance(got, BrokerResult)
                assert got.fingerprint == ref.fingerprint
                assert got.throughput == ref.throughput  # Fraction-exact
            # second pass is served from the workers' own caches
            again = sharded.solve_batch(requests)
            assert all(r.cached for r in again)

    def test_worker_state_stays_hot_across_calls(self):
        g = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                            link_c=[1, 1, 2, 3])
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            sharded.solve(SolveRequest(problem="master-slave", platform=g,
                                       master="M"))
            mutated = g.scale(compute="3/2", comm="2/3")
            warm = sharded.solve(SolveRequest(problem="master-slave",
                                              platform=mutated, master="M"))
            snap = sharded.snapshot()
            # weight-only mutation: either the same shard re-used its hot
            # model (warm) or another shard built fresh — but when it IS
            # warm, the hot model demonstrably survived between calls
            if warm.warm:
                assert snap["incremental"]["warm_solves"] >= 1
            from repro.core.master_slave import solve_master_slave

            assert (warm.solution.throughput
                    == solve_master_slave(mutated, "M").throughput)

    def test_include_schedule_roundtrips_through_the_pipe(self):
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1", include_schedule=True)
            res = sharded.solve(req)
            assert res.schedule is not None
            assert res.schedule.throughput == res.solution.throughput

    def test_invalidate_fans_out(self):
        fig1 = generators.paper_figure1()
        variants = [
            SolveRequest(problem="master-slave", platform=fig1, master="P1"),
            SolveRequest(problem="master-slave", platform=fig1, master="P2"),
            SolveRequest(problem="send-or-receive", platform=fig1,
                         master="P1"),
        ]
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            sharded.solve_batch(variants)
            assert sharded.invalidate_platform(fig1) == len(variants)
            assert all(not sharded.solve(r).cached for r in variants)

    def test_spec_error_surfaces_as_broker_error(self):
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            good = SolveRequest(problem="master-slave",
                                platform=generators.star(2), master="M")
            from repro.service.api import request_to_dict

            # a tampered wire payload sent straight to a shard: the
            # *worker* decodes, rejects, and the error crosses the pipe
            payload = request_to_dict(good)
            payload["spec"]["problem"] = "nope"
            with pytest.raises(BrokerError, match="unknown problem"):
                sharded._process_shards[0].call(
                    {"op": "solve", "fp": good.fingerprint(),
                     "request": payload})

    def test_worker_error_preserves_original_type(self):
        from repro.service import ShardError

        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            with pytest.raises(ShardError) as err:
                # worker-side PlatformError (not a SpecError): the relayed
                # exception must report the ORIGINAL class name, so the
                # JSON API's "type" field matches the unsharded broker
                sharded._process_shards[0].call(
                    {"op": "invalidate", "platform": {"nodes": 12}})
            assert type(err.value).__name__ == "PlatformError"

    def test_close_is_idempotent_and_workers_exit(self):
        sharded = ShardedBroker(shards=2, shard_mode="process")
        procs = [s.process for s in sharded._process_shards]
        sharded.close()
        sharded.close()
        assert all(not p.is_alive() for p in procs)


# ----------------------------------------------------------------------
# the batched pipe protocol (solve_many)
# ----------------------------------------------------------------------
class TestSolveMany:
    def test_batch_is_one_round_trip_per_shard(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            before = sharded.ipc_round_trips
            results = sharded.solve_batch(requests)
            used = sharded.ipc_round_trips - before
            # one solve_many per shard that owns part of the batch — not
            # one round-trip per request
            assert used <= sharded.shards < len(requests)
            for ref, got in zip(reference, results):
                assert got.throughput == ref.throughput  # Fraction-exact
                assert got.fingerprint == ref.fingerprint

    def test_intra_batch_duplicates_hit_the_shard_cache(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.star(3), master="M")
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            results = sharded.solve_batch([req, req, req])
            assert not results[0].cached
            assert results[1].cached and results[2].cached
            assert len({r.throughput for r in results}) == 1

    def test_per_item_errors_are_isolated_in_the_reply(self):
        good = SolveRequest(problem="master-slave",
                            platform=generators.star(2), master="M")
        from repro.service.api import request_to_dict

        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            bad = request_to_dict(good)
            bad["spec"]["problem"] = "nope"
            reply = sharded._process_shards[0].call({
                "op": "solve_many",
                "items": [
                    {"fp": good.fingerprint(),
                     "request": request_to_dict(good)},
                    {"fp": "bogus", "request": bad},
                ],
            })
            ok, err = reply["results"]
            assert ok["ok"] and isinstance(ok["result"], BrokerResult)
            assert not err["ok"] and err["type"] == "SpecError"

    def test_ipc_counter_grows_per_unbatched_solve(self):
        requests = _mixed_requests()[:4]
        with ShardedBroker(shards=2, shard_mode="process") as sharded:
            before = sharded.ipc_round_trips
            for request in requests:
                sharded.solve(request)
            assert sharded.ipc_round_trips - before == len(requests)

    def test_thread_mode_has_no_ipc(self):
        with ShardedBroker(shards=2, shard_mode="thread") as sharded:
            sharded.solve_batch(_mixed_requests()[:3])
            assert sharded.ipc_round_trips == 0


# ----------------------------------------------------------------------
# the JSON API over a sharded broker
# ----------------------------------------------------------------------
class TestShardedApi:
    def _envelope(self):
        return {"op": "solve", "request": {
            "problem": "master-slave",
            "platform": platform_to_dict(generators.paper_figure1()),
            "master": "P1"}}

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_handle_request_ops(self, mode):
        with ShardedBroker(shards=2, shard_mode=mode) as sharded:
            out = handle_request(sharded, self._envelope())
            assert out["ok"] and Fraction(out["throughput"]) == Fraction(2)
            again = handle_request(sharded, self._envelope())
            assert again["cached"]
            metrics = handle_request(sharded, {"op": "metrics"})
            assert metrics["ok"] and metrics["shards"] == 2
            assert metrics["metrics"]["total_requests"] >= 2
            cache = handle_request(sharded, {"op": "cache"})
            assert cache["cache"]["size"] == 1
            inv = handle_request(sharded, {
                "op": "invalidate",
                "platform": platform_to_dict(generators.paper_figure1())})
            assert inv["invalidated"] == 1
            bad = handle_request(sharded, {"op": "solve", "request": {
                "problem": "nope",
                "platform": platform_to_dict(generators.star(2)),
                "master": "M"}})
            assert not bad["ok"] and bad["status"] == 422


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestServeCli:
    def test_executor_flag_rejected_with_shards(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--shard-mode"):
            main(["serve", "--stdio", "--shards", "2",
                  "--executor", "process"])

    def test_sharded_stdio_roundtrip(self, capsys):
        import io
        import sys as _sys

        from repro.cli import main

        lines = json.dumps({"op": "ping"}) + "\n" + json.dumps(
            {"op": "shutdown"}) + "\n"
        old_stdin = _sys.stdin
        _sys.stdin = io.StringIO(lines)
        try:
            rc = main(["serve", "--stdio", "--shards", "2"])
        finally:
            _sys.stdin = old_stdin
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        assert json.loads(out[0])["pong"]


# ----------------------------------------------------------------------
# metrics snapshot merging
# ----------------------------------------------------------------------
class TestMergeSnapshots:
    def test_counts_sum_and_rates_rederive(self):
        from repro.service import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        for ms in (1, 2, 3):
            a.observe("solve", ms / 1000)
        b.observe("solve", 0.004)
        b.observe("solve", 0.1, error=True)
        b.observe("ping", 0.001)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        ep = merged["endpoints"]["solve"]
        assert ep["count"] == 5 and ep["errors"] == 1
        assert ep["total_seconds"] == pytest.approx(0.110)
        assert ep["min_seconds"] == pytest.approx(0.001)
        assert ep["max_seconds"] == pytest.approx(0.1)
        assert merged["total_requests"] == 6
        assert merged["requests_per_second"] > 0

    def test_empty_merge(self):
        merged = merge_snapshots([])
        assert merged["total_requests"] == 0
        assert merged["endpoints"] == {}

    def test_dotted_subtimers_not_double_counted(self):
        from repro.service import MetricsRegistry

        reg = MetricsRegistry()
        reg.observe("solve", 0.001)
        reg.observe("solve.cold", 0.001)
        merged = merge_snapshots([reg.snapshot(), reg.snapshot()])
        assert merged["total_requests"] == 2
        assert "solve.cold" in merged["endpoints"]
