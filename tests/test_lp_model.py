"""Tests for the LP modelling layer."""

from fractions import Fraction

import pytest

from repro.lp import (
    Constraint,
    LinearProgram,
    LinExpr,
    LPError,
    lp_sum,
)


class TestExpressions:
    def test_variable_arithmetic(self):
        lp = LinearProgram()
        x = lp.variable("x")
        y = lp.variable("y")
        e = 2 * x + y - 3
        assert e.terms[x] == 2
        assert e.terms[y] == 1
        assert e.constant == -3

    def test_subtraction_cancels(self):
        lp = LinearProgram()
        x = lp.variable("x")
        e = (x + 1) - x
        assert x not in e.terms
        assert e.constant == 1

    def test_division(self):
        lp = LinearProgram()
        x = lp.variable("x")
        e = x / 4
        assert e.terms[x] == Fraction(1, 4)

    def test_division_by_zero(self):
        lp = LinearProgram()
        x = lp.variable("x")
        with pytest.raises(ZeroDivisionError):
            _ = (x + 0) / 0

    def test_negation(self):
        lp = LinearProgram()
        x = lp.variable("x")
        e = -(x + 2)
        assert e.terms[x] == -1
        assert e.constant == -2

    def test_rsub(self):
        lp = LinearProgram()
        x = lp.variable("x")
        e = 5 - x
        assert e.terms[x] == -1
        assert e.constant == 5

    def test_value_evaluation(self):
        lp = LinearProgram()
        x = lp.variable("x")
        y = lp.variable("y")
        e = 2 * x + 3 * y + 1
        assert e.value({x: Fraction(1), y: Fraction(2)}) == 9

    def test_lp_sum(self):
        lp = LinearProgram()
        xs = [lp.variable(f"x{i}") for i in range(3)]
        e = lp_sum(xs)
        assert all(e.terms[x] == 1 for x in xs)

    def test_lp_sum_empty(self):
        e = lp_sum([])
        assert isinstance(e, LinExpr)
        assert not e.terms

    def test_fraction_coefficients_survive(self):
        lp = LinearProgram()
        x = lp.variable("x")
        e = x * Fraction(1, 3)
        assert e.terms[x] == Fraction(1, 3)


class TestConstraints:
    def test_le(self):
        lp = LinearProgram()
        x = lp.variable("x")
        c = x + 1 <= 3
        assert isinstance(c, Constraint)
        terms, sense, rhs = c.normalized()
        assert sense == "<=" and rhs == 2

    def test_ge(self):
        lp = LinearProgram()
        x = lp.variable("x")
        terms, sense, rhs = (x >= 5).normalized()
        assert sense == ">=" and rhs == 5

    def test_eq(self):
        lp = LinearProgram()
        x = lp.variable("x")
        y = lp.variable("y")
        c = x + y == 2
        terms, sense, rhs = c.normalized()
        assert sense == "==" and rhs == 2
        assert set(terms) == {x, y}

    def test_violation(self):
        lp = LinearProgram()
        x = lp.variable("x")
        c = x <= 3
        assert c.violation({x: Fraction(5)}) == 2
        assert c.violation({x: Fraction(2)}) == 0


class TestProgram:
    def test_duplicate_variable_name(self):
        lp = LinearProgram()
        lp.variable("x")
        with pytest.raises(LPError):
            lp.variable("x")

    def test_bad_bounds(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.variable("x", lo=2, hi=1)

    def test_get_variable(self):
        lp = LinearProgram()
        x = lp.variable("x")
        assert lp.get_variable("x") is x
        with pytest.raises(LPError):
            lp.get_variable("nope")

    def test_add_non_constraint(self):
        lp = LinearProgram()
        with pytest.raises(LPError):
            lp.add_constraint(True)  # comparison collapsed to a bool

    def test_solve_without_objective(self):
        lp = LinearProgram()
        lp.variable("x", lo=0)
        with pytest.raises(LPError):
            lp.solve()

    def test_unknown_backend(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.maximize(x)
        with pytest.raises(LPError):
            lp.solve(backend="cplex")

    def test_check_catches_violations(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x <= Fraction(1, 2), name="cap")
        lp.maximize(x)
        sol = lp.solve()
        lp.check(sol)  # must pass
        sol.values[x] = Fraction(2)
        with pytest.raises(LPError):
            lp.check(sol)

    def test_stats(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.add_constraint(x <= 1)
        assert lp.stats() == {"variables": 1, "constraints": 1}

    def test_solution_by_name(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=2)
        lp.maximize(x)
        sol = lp.solve()
        assert sol.value_by_name() == {"x": Fraction(2)}
