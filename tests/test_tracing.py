"""Tests for request tracing: span trees, the trace store, remote span
grafting, structured events, the Prometheus view, and the end-to-end
acceptance path — a solve routed over TCP whose returned trace contains
both broker-side routing spans and shard-side simplex spans."""

import json
import logging
import threading

import pytest

from repro.platform import generators
from repro.service import (
    Broker,
    EventLog,
    ShardedBroker,
    ShardServer,
    SolveRequest,
    Trace,
    TraceStore,
    activate,
    annotate,
    current_span,
    current_trace,
    handle_request,
    render_prometheus,
    render_waterfall,
    span,
    start_trace,
)
from repro.service.tracing import graft_remote


def _request(problem: str = "master-slave") -> SolveRequest:
    return SolveRequest(problem=problem,
                        platform=generators.paper_figure1(), master="P1")


# ----------------------------------------------------------------------
# Span / Trace basics
# ----------------------------------------------------------------------
class TestTraceBasics:
    def test_span_tree_shape_and_ordering(self):
        trace = Trace("unit")
        root = trace.root  # created by the constructor, named "unit"
        child = trace.new_span("child", root.span_id)
        child.annotate(pivots=7)
        child.finish()
        sibling = trace.new_span("sibling", root.span_id)
        sibling.finish()
        trace.finish()

        d = trace.as_dict()
        assert d["trace_id"] == trace.trace_id
        assert d["name"] == "unit"
        spans = d["spans"]
        assert [s["name"] for s in spans][0] == "unit"
        by_name = {s["name"]: s for s in spans}
        assert by_name["child"]["parent"] == by_name["unit"]["id"]
        assert by_name["child"]["annotations"]["pivots"] == 7
        assert all(s["duration_seconds"] >= 0 for s in spans)

    def test_no_active_trace_means_null_context(self):
        assert current_span() is None
        with span("orphan") as sp:
            assert sp is None          # no-op context: zero overhead path
        annotate(ignored=True)         # must not raise without a trace
        assert current_trace() is None

    def test_start_trace_nests_spans_and_restores_state(self):
        with start_trace("outer", color="red") as tr:
            assert current_trace() is tr
            with span("inner", step=1) as sp:
                assert sp is not None
                assert current_span() is sp
            assert current_span() is not None  # back to the root span
        assert current_span() is None
        names = [s["name"] for s in tr.as_dict()["spans"]]
        assert names == ["outer", "inner"]
        root = tr.as_dict()["spans"][0]
        assert root["annotations"]["color"] == "red"

    def test_span_records_error_annotation(self):
        with pytest.raises(ValueError):
            with start_trace("boom"):
                with span("failing"):
                    raise ValueError("nope")
        # The trace context exited; nothing should linger thread-locally.
        assert current_span() is None

    def test_activate_carries_context_across_threads(self):
        results = {}

        def worker(parent):
            with activate(parent):
                with span("in-thread") as sp:
                    results["span"] = sp

        with start_trace("threaded") as tr:
            parent = current_span()
            t = threading.Thread(target=worker, args=(parent,))
            t.start()
            t.join()
        assert results["span"].trace is tr
        assert results["span"].parent_id == tr.as_dict()["spans"][0]["id"]

    def test_activate_none_is_noop(self):
        with activate(None):
            assert current_span() is None


# ----------------------------------------------------------------------
# Remote span grafting
# ----------------------------------------------------------------------
class TestGraftRemote:
    def test_graft_rebases_and_reparents(self):
        remote = Trace("shard.solve")
        r_child = remote.new_span("simplex.solve", remote.root.span_id)
        r_child.finish()
        remote.finish()
        wire = remote.span_wire()

        with start_trace("caller") as tr:
            with span("transport.tcp") as sp:
                sp.duration_seconds = 0.010
                n = graft_remote(sp, wire, round_trip_seconds=0.010)
        assert n == 2
        d = tr.as_dict()
        by_name = {s["name"]: s for s in d["spans"]}
        assert by_name["shard.solve"]["parent"] == by_name["transport.tcp"]["id"]
        assert by_name["simplex.solve"]["parent"] == by_name["shard.solve"]["id"]
        assert by_name["shard.solve"]["annotations"]["remote"] is True
        # Rebase: the remote root starts at or after the transport span.
        assert (by_name["shard.solve"]["start_seconds"]
                >= by_name["transport.tcp"]["start_seconds"])
        # Grafted ids must not collide with local ones.
        assert len({s["id"] for s in d["spans"]}) == len(d["spans"])

    def test_graft_empty_wire_is_noop(self):
        with start_trace("caller") as tr:
            with span("transport.tcp") as sp:
                assert graft_remote(sp, [], 0.001) == 0
        assert len(tr.as_dict()["spans"]) == 2


# ----------------------------------------------------------------------
# TraceStore: bounded recency ring + always-keep-slow ring
# ----------------------------------------------------------------------
class TestTraceStore:
    @staticmethod
    def _trace(name: str, duration: float) -> Trace:
        tr = Trace(name)
        tr.root.duration_seconds = duration
        tr.finish()
        return tr

    def test_recent_eviction_keeps_slow(self):
        store = TraceStore(capacity=4, slow_capacity=4, slow_threshold=0.5)
        slow = self._trace("slow-one", 1.0)
        store.add(slow)
        for i in range(10):
            store.add(self._trace(f"fast-{i}", 0.001))
        assert store.get(slow.trace_id) is not None
        snap = store.snapshot()
        assert snap["slow_captured"] == 1
        assert snap["captured"] == 11
        index = store.index()
        assert any(e["trace_id"] == slow.trace_id and e["slow"]
                   for e in index)

    def test_slow_ring_evicts_only_by_slow(self):
        store = TraceStore(capacity=2, slow_capacity=2, slow_threshold=0.5)
        first, second, third = (self._trace(f"s{i}", 1.0) for i in range(3))
        for tr in (first, second, third):
            store.add(tr)
        assert store.get(first.trace_id) is None      # bumped by third
        assert store.get(second.trace_id) is not None
        assert store.get(third.trace_id) is not None

    def test_index_limit_and_missing_get(self):
        store = TraceStore(capacity=8)
        for i in range(5):
            store.add(self._trace(f"t{i}", 0.001))
        assert len(store.index(limit=3)) == 3
        assert store.get("no-such-id") is None


# ----------------------------------------------------------------------
# Structured events
# ----------------------------------------------------------------------
class TestEventLog:
    def test_emit_is_json_logged_and_ring_bounded(self, caplog):
        log = EventLog(capacity=3)
        with caplog.at_level(logging.INFO, logger="repro.events"):
            for i in range(5):
                log.emit("shard.eject", shard=i)
        recent = log.recent()
        assert len(recent) == 3
        assert [e["shard"] for e in recent] == [2, 3, 4]
        assert all(e["event"] == "shard.eject" and "ts" in e
                   for e in recent)
        parsed = json.loads(caplog.records[-1].getMessage())
        assert parsed["event"] == "shard.eject" and parsed["shard"] == 4

    def test_recent_limit(self):
        log = EventLog()
        for i in range(4):
            log.emit("x", i=i)
        assert len(log.recent(limit=2)) == 2


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_waterfall_lists_every_span_indented(self):
        with start_trace("request.solve", problem="demo") as tr:
            with span("engine.run"):
                with span("cache.lookup"):
                    pass
        text = render_waterfall(tr.as_dict())
        assert tr.trace_id in text
        lines = text.splitlines()
        assert any(line.lstrip().startswith("request.solve")
                   for line in lines)
        idx = {name: next(i for i, l in enumerate(lines) if name in l)
               for name in ("request.solve", "engine.run", "cache.lookup")}
        indent = {k: len(lines[v]) - len(lines[v].lstrip())
                  for k, v in idx.items()}
        assert indent["request.solve"] < indent["engine.run"] \
            < indent["cache.lookup"]
        assert "problem=demo" in text

    def test_prometheus_rendering_of_snapshot(self):
        with Broker(executor="sync") as broker:
            broker.solve(_request())
            response = handle_request(broker, {"op": "metrics"})
        text = render_prometheus(response)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total" in text
        assert 'repro_request_duration_seconds{endpoint="solve"' in text
        assert "repro_cache_hits_total" in text
        assert text.endswith("\n")

    def test_prometheus_includes_trace_counters(self):
        store = TraceStore()
        with Broker(executor="sync") as broker:
            handle_request(broker, {"op": "solve",
                                    "request": _solve_wire()},
                           trace_store=store)
            response = handle_request(broker, {"op": "metrics"},
                                      trace_store=store)
        text = render_prometheus(response)
        assert "repro_traces_captured_total 1" in text


def _solve_wire() -> dict:
    from repro.service import request_to_dict

    return request_to_dict(_request())


# ----------------------------------------------------------------------
# API surface: /traces, /trace/<id>, /events, inline traces
# ----------------------------------------------------------------------
class TestTraceApi:
    def test_solve_records_trace_and_trace_op_fetches_it(self):
        store = TraceStore()
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve",
                                          "request": _solve_wire()},
                                 trace_store=store)
            assert out["ok"] and "trace_id" in out
            assert "trace" not in out  # stored, not inlined

            listing = handle_request(broker, {"op": "traces"},
                                     trace_store=store)
            assert listing["ok"]
            assert any(e["trace_id"] == out["trace_id"]
                       for e in listing["traces"])

            got = handle_request(broker, {"op": "trace",
                                          "trace_id": out["trace_id"]},
                                 trace_store=store)
            assert got["ok"]
            names = {s["name"] for s in got["trace"]["spans"]}
            assert "engine.run" in names and "cache.lookup" in names

    def test_trace_op_missing_id_is_404(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "trace",
                                          "trace_id": "nope"},
                                 trace_store=TraceStore())
        assert not out["ok"] and out["status"] == 404

    def test_inline_trace_without_store(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "trace": True,
                                          "request": _solve_wire()})
        assert out["ok"]
        names = {s["name"] for s in out["trace"]["spans"]}
        assert "request.solve" in names and "simplex.solve" in names

    def test_events_op(self):
        from repro.service import log_event

        log_event("shard.eject", shard=9)
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "events", "limit": 5})
        assert out["ok"]
        assert any(e["event"] == "shard.eject" for e in out["events"])


# ----------------------------------------------------------------------
# Acceptance: one trace spanning broker → ring → TCP transport → simplex
# ----------------------------------------------------------------------
@pytest.fixture()
def shard_server():
    server = ShardServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


class TestEndToEnd:
    def test_tcp_routed_solve_returns_cross_boundary_trace(
            self, shard_server):
        store = TraceStore()
        with ShardedBroker(shards=0,
                           shard_addresses=[shard_server.address]) as sharded:
            out = handle_request(sharded, {"op": "solve",
                                           "request": _solve_wire()},
                                 trace_store=store)
            assert out["ok"]
            trace = store.get(out["trace_id"]).as_dict()

        names = {s["name"] for s in trace["spans"]}
        # Broker-side routing spans …
        assert "request.solve" in names
        assert any(n.startswith("transport.") for n in names)
        # … and shard-side spans crossed the wire and re-parented.
        assert "shard.solve" in names
        assert "engine.run" in names
        simplex = [s for s in trace["spans"]
                   if s["name"] == "simplex.solve"]
        assert simplex and "pivots" in simplex[0]["annotations"]
        phases = [s for s in trace["spans"]
                  if s["name"].startswith("simplex.cold.")]
        assert phases and all(p["annotations"]["pivots"] >= 0
                              for p in phases)

        by_id = {s["id"]: s for s in trace["spans"]}
        shard_root = next(s for s in trace["spans"]
                          if s["name"] == "shard.solve")
        assert by_id[shard_root["parent"]]["name"].startswith("transport.")
        # The whole tree is connected: every parent id resolves.
        for s in trace["spans"]:
            assert s["parent"] is None or s["parent"] in by_id

    def test_pipe_shard_trace_and_waterfall(self):
        with ShardedBroker(shards=1, shard_mode="process") as sharded:
            with start_trace("test") as tr:
                sharded.solve(_request())
        names = {s["name"] for s in tr.as_dict()["spans"]}
        assert "transport.pipe" in names and "simplex.solve" in names
        text = render_waterfall(tr.as_dict())
        assert "transport.pipe" in text

    def test_tracing_off_costs_nothing_and_changes_nothing(self):
        with ShardedBroker(shards=1, shard_mode="process") as sharded:
            result = sharded.solve(_request())
        assert result.solution.throughput is not None
        assert current_span() is None
