"""Tree-packing → periodic-schedule conversion tests."""

from fractions import Fraction

import pytest

from repro.core.broadcast import solve_broadcast
from repro.core.multicast import solve_multicast
from repro.platform import generators as gen
from repro.schedule.collective import packing_to_schedule, tree_routes


class TestPackingToSchedule:
    def test_fig2_broadcast_schedule(self, fig2):
        sol = solve_broadcast(fig2, "P0")
        sched = packing_to_schedule(fig2, sol.packing, "P0", "broadcast")
        assert sched.throughput == sol.achieved
        # per-period instance counts are integers on every edge
        for count in sched.messages.values():
            assert count >= 1

    def test_multicast_schedule_realises_three_quarters(self, fig2):
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        sched = packing_to_schedule(
            fig2, analysis.packing, "P0", "multicast"
        )
        assert sched.throughput == Fraction(3, 4)
        # orchestrated slices all fit inside the period
        assert all(sl.end <= sched.period for sl in sched.slices)

    def test_shared_edge_pays_per_tree(self, fig2):
        """Distinct trees on one edge are distinct transfers: the busy
        time on P3->P4 equals the sum over trees crossing it."""
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        sched = packing_to_schedule(fig2, analysis.packing, "P0", "multicast")
        T = sched.period
        crossing = sum(
            (rate for tree, rate in analysis.packing.items()
             if ("P3", "P4") in tree),
            start=Fraction(0),
        )
        assert sched.comm_time("P3", "P4") == crossing * T * fig2.c("P3", "P4")

    def test_empty_packing(self, fig2):
        sched = packing_to_schedule(fig2, {}, "P0")
        assert sched.throughput == 0
        assert sched.slices == []

    def test_chain_broadcast_schedule(self):
        g = gen.chain(4, link_c=1)
        sol = solve_broadcast(g, "N0")
        sched = packing_to_schedule(g, sol.packing, "N0")
        assert sched.throughput == 1
        # the chain pipeline: every link busy the whole period
        for spec in g.edges():
            assert sched.comm_time(spec.src, spec.dst) == sched.period

    def test_tree_routes_sorted(self, fig2):
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        routes = tree_routes(analysis.packing, "P0")
        rates = [r for _, r in routes]
        assert rates == sorted(rates, reverse=True)
        assert all(r > 0 for r in rates)
