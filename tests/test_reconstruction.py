"""End-to-end reconstruction tests (section 4.1's pipeline).

For every platform family: solve SSMS, reconstruct, and machine-check the
paper's claims about the resulting periodic schedule.
"""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.core.scatter import solve_gather, solve_scatter
from repro.platform import generators as gen
from repro.schedule.periodic import ScheduleError
from repro.schedule.reconstruction import reconstruct_schedule


class TestMasterSlaveReconstruction:
    def test_all_invariants(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        # validate() and check_message_counts() ran inside; re-check core:
        assert sched.period >= 1
        assert sched.throughput == sol.throughput

    def test_tasks_per_period_matches_throughput(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        assert Fraction(sched.tasks_per_period()) == (
            sol.throughput * sched.period
        )

    def test_counts_are_integers(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        for count in sched.compute.values():
            assert isinstance(count, int)
        for count in sched.messages.values():
            assert isinstance(count, int) and count > 0

    def test_slice_count_polynomial(self, any_platform):
        """The compact-description claim: #slices is O(|E| + p), however
        large T gets."""
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        assert len(sched.slices) <= platform.num_edges + 2 * platform.num_nodes

    def test_routes_deliver_all_remote_tasks(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = reconstruct_schedule(sol)
        remote = sum(
            cnt for node, cnt in sched.compute.items() if node != master
        )
        delivered = sum(
            (rate for _, rate in sched.routes.get("task", [])),
            start=Fraction(0),
        )
        assert delivered == remote

    def test_period_override(self, star4):
        sol = solve_master_slave(star4, "M")
        base = reconstruct_schedule(sol)
        doubled = reconstruct_schedule(sol, period=int(base.period) * 2)
        assert doubled.period == base.period * 2
        assert doubled.tasks_per_period() == 2 * base.tasks_per_period()

    def test_bad_period_override(self, star4):
        sol = solve_master_slave(star4, "M")
        base = reconstruct_schedule(sol)
        with pytest.raises(ScheduleError):
            reconstruct_schedule(sol, period=int(base.period) * 2 + 1)

    def test_figure1_concrete(self, fig1):
        sol = solve_master_slave(fig1, "P1")
        sched = reconstruct_schedule(sol)
        assert sched.period == 2
        assert sched.tasks_per_period() == 4  # throughput 2 x period 2


class TestScatterReconstruction:
    def test_fig2_scatter_schedule(self, fig2):
        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sched = reconstruct_schedule(sol)
        assert sched.throughput == Fraction(1, 2)
        # each commodity's route decomposition delivers TP*T messages
        for k in ("P5", "P6"):
            delivered = sum(
                (rate for _, rate in sched.routes[k]), start=Fraction(0)
            )
            assert delivered == sol.throughput * sched.period

    def test_chain_scatter_schedule(self):
        g = gen.chain(3, link_c=1)
        sol = solve_scatter(g, "N0", ["N1", "N2"])
        sched = reconstruct_schedule(sol)
        # relayed commodity occupies both hops
        assert sched.comm_time("N0", "N1") == sched.period  # both commodities
        assert sched.comm_time("N1", "N2") == sched.period / 2


class TestGatherReconstruction:
    """Regression (ROADMAP open item): gather flows point AT the sink, so
    the route decomposition must run commodity ``k`` from node ``k`` to the
    sink — the reverse orientation of scatter's source-outward commodities.
    The old code decomposed from the sink and raised ``FlowError``."""

    def test_star_gather_schedule(self):
        g = gen.star(3, bidirectional=True)
        sol = solve_gather(g, "M", ["W1", "W2", "W3"])
        sched = reconstruct_schedule(sol)
        assert sched.throughput == sol.throughput
        for k in ("W1", "W2", "W3"):
            delivered = sum(
                (rate for _, rate in sched.routes[k]), start=Fraction(0)
            )
            assert delivered == sol.throughput * sched.period
            for path, _rate in sched.routes[k]:
                assert path[0] == k and path[-1] == "M"

    def test_chain_gather_relays_through_intermediates(self):
        g = gen.chain(3)
        sol = solve_gather(g, "N2", ["N0", "N1"])
        sched = reconstruct_schedule(sol)
        # N0's commodity is relayed via N1; both arrive at the sink
        assert sched.routes["N0"] == [(("N0", "N1", "N2"), Fraction(1))]
        assert sched.routes["N1"] == [(("N1", "N2"), Fraction(1))]
        # validate()/check_message_counts() ran inside reconstruct_schedule
        assert sched.comm_time("N1", "N2") == sched.period

    def test_heterogeneous_gather_invariants(self):
        g = gen.star(4, worker_w=[1, 2, 3, 4], link_c=[1, 2, 1, 3],
                     bidirectional=True)
        sol = solve_gather(g, "M", ["W1", "W2", "W3", "W4"])
        sched = reconstruct_schedule(sol)
        assert sched.period >= 1
        total = sum(
            (rate for k in ("W1", "W2", "W3", "W4")
             for _, rate in sched.routes[k]),
            start=Fraction(0),
        )
        assert total == 4 * sol.throughput * sched.period
