"""The sparse revised simplex: LU/eta unit tests, a hypothesis
differential suite against the dense tableau engine, warm-restart edge
cases under the factorisation, and the counter plumbing into the
service metrics."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import (
    BasisFactor,
    DEFAULT_ENGINE,
    InfeasibleError,
    LinearProgram,
    LPError,
    SimplexInstance,
    SingularBasisError,
    SparseLU,
    UnboundedError,
    lp_sum,
    solve_exact,
)

F = Fraction
coef = st.integers(min_value=-5, max_value=5)


def dense_of(m, columns):
    rows = [[F(0)] * m for _ in range(m)]
    for j, col in enumerate(columns):
        for i, v in col.items():
            rows[i][j] = v
    return rows


def mat_vec(rows, x):
    return [sum(r[j] * x[j] for j in range(len(x))) for r in rows]


def vec_mat(y, rows):
    m = len(rows)
    return [sum(y[i] * rows[i][j] for i in range(m)) for j in range(m)]


# ----------------------------------------------------------------------
# SparseLU / BasisFactor unit behaviour
# ----------------------------------------------------------------------
class TestSparseLU:
    def test_identity(self):
        lu = SparseLU.factor(3, [{0: F(1)}, {1: F(1)}, {2: F(1)}])
        assert lu is not None
        assert lu.ftran([F(3), F(5), F(7)]) == [F(3), F(5), F(7)]
        assert lu.btran([F(2), F(4), F(6)]) == [F(2), F(4), F(6)]
        assert lu.nnz == 3 and lu.basis_nnz == 3

    def test_permutation(self):
        # columns e2, e0, e1: x solves B x = rhs with x by basis slot
        lu = SparseLU.factor(3, [{2: F(1)}, {0: F(1)}, {1: F(1)}])
        assert lu is not None
        assert lu.ftran([F(10), F(20), F(30)]) == [F(30), F(10), F(20)]

    def test_structurally_singular_is_none(self):
        assert SparseLU.factor(2, [{0: F(1)}, {}]) is None

    def test_numerically_singular_is_none(self):
        cols = [{0: F(1), 1: F(2)}, {0: F(2), 1: F(4)}]
        assert SparseLU.factor(2, cols) is None

    def test_wrong_column_count_is_none(self):
        assert SparseLU.factor(2, [{0: F(1)}]) is None

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_matrix_solves_exactly(self, data):
        m = data.draw(st.integers(min_value=1, max_value=5))
        entries = data.draw(st.lists(
            st.tuples(st.integers(0, m - 1), st.integers(0, m - 1),
                      st.fractions(min_value=-3, max_value=3)),
            min_size=m, max_size=3 * m))
        columns = [dict() for _ in range(m)]
        for i, j, v in entries:
            if v != 0:
                columns[j][i] = v
        rows = dense_of(m, columns)
        lu = SparseLU.factor(m, [dict(c) for c in columns])
        if lu is None:
            # must actually be singular: exact Gaussian elimination on
            # the dense copy finds rank < m
            assert _dense_rank(rows) < m
            return
        rhs = [data.draw(st.fractions(min_value=-4, max_value=4))
               for _ in range(m)]
        x = lu.ftran(list(rhs))
        assert mat_vec(rows, x) == rhs
        cost = [data.draw(st.fractions(min_value=-4, max_value=4))
                for _ in range(m)]
        y = lu.btran(list(cost))
        assert vec_mat(y, rows) == cost


def _dense_rank(rows):
    rows = [list(r) for r in rows]
    m = len(rows)
    rank = 0
    for j in range(m):
        piv = next((i for i in range(rank, m) if rows[i][j] != 0), None)
        if piv is None:
            continue
        rows[rank], rows[piv] = rows[piv], rows[rank]
        inv = 1 / rows[rank][j]
        rows[rank] = [v * inv for v in rows[rank]]
        for i in range(m):
            if i != rank and rows[i][j] != 0:
                f = rows[i][j]
                rows[i] = [a - f * b for a, b in zip(rows[i], rows[rank])]
        rank += 1
    return rank


class TestBasisFactor:
    def _factor(self):
        columns = [{0: F(2), 1: F(1)}, {1: F(3)}]
        lu = SparseLU.factor(2, [dict(c) for c in columns])
        assert lu is not None
        return BasisFactor(lu), columns

    def test_eta_update_matches_refactorisation(self):
        bf, columns = self._factor()
        entering = {0: F(1), 1: F(5)}
        w = bf.ftran([entering.get(0, F(0)), entering.get(1, F(0))])
        assert w[1] != 0
        bf.push_eta(1, w)
        columns[1] = entering
        fresh = SparseLU.factor(2, [dict(c) for c in columns])
        assert fresh is not None
        for rhs in ([F(1), F(0)], [F(0), F(1)], [F(7), F(-3)]):
            assert bf.ftran(list(rhs)) == fresh.ftran(list(rhs))
            assert bf.btran(list(rhs)) == fresh.btran(list(rhs))

    def test_zero_pivot_eta_raises(self):
        bf, _ = self._factor()
        with pytest.raises(SingularBasisError):
            bf.push_eta(0, [F(0), F(4)])

    def test_op_counters(self):
        bf, _ = self._factor()
        bf.ftran([F(1), F(1)])
        bf.btran([F(1), F(1)])
        bf.btran([F(2), F(0)])
        assert bf.ftran_ops == 1 and bf.btran_ops == 2


# ----------------------------------------------------------------------
# differential: revised vs tableau on random LPs
# ----------------------------------------------------------------------
@st.composite
def random_lp(draw):
    """Random LP with mixed bound kinds, senses and degenerate ties.

    Small integer coefficients and zero-heavy rhs keep ties (degenerate
    vertices) common; every bound kind and constraint sense is drawn.
    """
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=5))
    bounds = [draw(st.sampled_from(["lo", "box", "hi", "free"]))
              for _ in range(n)]
    rows = [[draw(coef) for _ in range(n)] for _ in range(m)]
    senses = [draw(st.sampled_from(["<=", ">=", "=="])) for _ in range(m)]
    rhs = [draw(st.integers(min_value=0, max_value=4)) for _ in range(m)]
    obj = [draw(coef) for _ in range(n)]
    maximize = draw(st.booleans())
    return n, bounds, rows, senses, rhs, obj, maximize


def build_lp(data):
    n, bounds, rows, senses, rhs, obj, maximize = data
    lp = LinearProgram(name="diff")
    xs = []
    for i, kind in enumerate(bounds):
        if kind == "lo":
            xs.append(lp.variable(f"x{i}", lo=0))
        elif kind == "box":
            xs.append(lp.variable(f"x{i}", lo=0, hi=3))
        elif kind == "hi":
            xs.append(lp.variable(f"x{i}", hi=3))
        else:
            xs.append(lp.variable(f"x{i}"))
    for k, (row, sense, b) in enumerate(zip(rows, senses, rhs)):
        expr = lp_sum(c * x for c, x in zip(row, xs))
        if sense == "<=":
            lp.add_constraint(expr <= b, name=f"c{k}")
        elif sense == ">=":
            lp.add_constraint(expr >= b, name=f"c{k}")
        else:
            lp.add_constraint(expr == b, name=f"c{k}")
    objective = lp_sum(c * x for c, x in zip(obj, xs))
    if maximize:
        lp.maximize(objective)
    else:
        lp.minimize(objective)
    return lp, xs


def classify(lp, engine):
    try:
        return "optimal", solve_exact(lp, engine=engine)
    except InfeasibleError:
        return "infeasible", None
    except UnboundedError:
        return "unbounded", None


class TestDifferential:
    @settings(max_examples=120, deadline=None)
    @given(random_lp())
    def test_cold_solves_agree_exactly(self, data):
        lp_r, _ = build_lp(data)
        lp_t, _ = build_lp(data)
        kind_r, sol_r = classify(lp_r, "revised")
        kind_t, sol_t = classify(lp_t, "tableau")
        assert kind_r == kind_t
        if kind_r == "optimal":
            assert sol_r.objective == sol_t.objective
            # both engines follow the same pivot rules, so the cold
            # solves land on the same vertex — values identical too
            values_r = {v.name: x for v, x in sol_r.values.items()}
            values_t = {v.name: x for v, x in sol_t.values.items()}
            assert values_r == values_t
            lp_r.check(sol_r)

    @settings(max_examples=60, deadline=None)
    @given(random_lp(), st.data())
    def test_warm_resolves_agree_on_objective(self, data, dyn):
        """Patch one coefficient, warm-solve on both engines: same
        classification and exact objective (the vertices may differ —
        warm repairs walk engine-specific paths)."""
        insts = {}
        lps = {}
        for engine in ("revised", "tableau"):
            lp, xs = build_lp(data)
            lps[engine] = (lp, xs)
            inst = SimplexInstance(lp, engine=engine)
            insts[engine] = inst
        kinds = {}
        for engine, inst in insts.items():
            try:
                inst.solve()
                kinds[engine] = "optimal"
            except InfeasibleError:
                kinds[engine] = "infeasible"
            except UnboundedError:
                kinds[engine] = "unbounded"
        assert kinds["revised"] == kinds["tableau"]
        if kinds["revised"] != "optimal":
            return
        n, bounds, rows, senses, rhs, obj, maximize = data
        ci = dyn.draw(st.integers(0, len(lps["revised"][0].constraints) - 1))
        vi = dyn.draw(st.integers(0, n - 1))
        delta = dyn.draw(st.sampled_from(
            [F(1), F(-1), F(1, 2), F(2)]))
        outcomes = {}
        for engine in ("revised", "tableau"):
            lp, xs = lps[engine]
            cons = lp.constraints[ci]
            old = cons.expr.terms.get(xs[vi], F(0))
            # a patch to 0 removes the term (structure change): both
            # engines then fall back cold, which must also agree
            lp.set_constraint_coefficient(cons.name, xs[vi], old + delta)
            try:
                sol = insts[engine].solve(warm=True)
                outcomes[engine] = ("optimal", sol.objective)
            except InfeasibleError:
                outcomes[engine] = ("infeasible", None)
            except UnboundedError:
                outcomes[engine] = ("unbounded", None)
        assert outcomes["revised"] == outcomes["tableau"]


# ----------------------------------------------------------------------
# warm-restart edge cases under the factorisation
# ----------------------------------------------------------------------
class TestWarmEdgeCases:
    @staticmethod
    def _two_var_model():
        """max 3x + 2y with the optimum at the constraint intersection
        (x = y = 4/3), so both structural columns end up basic."""
        lp = LinearProgram(name="edge")
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + 2 * y <= 4, name="c1")
        lp.add_constraint(2 * x + y <= 4, name="c2")
        lp.maximize(3 * x + 2 * y)
        return lp, x, y

    def test_singular_retained_basis_falls_back_cold(self):
        lp, x, y = self._two_var_model()
        inst = SimplexInstance(lp, engine="revised")
        sol = inst.solve()
        # optimum sits on both constraints: x and y are basic
        assert sol[x] == F(4, 3) and sol[y] == F(4, 3)
        # patch c1 to duplicate c2: the retained x/y basis columns
        # become (2,2) and (1,1) — linearly dependent — so the warm LU
        # is singular and the solve must fall back cold, still
        # returning the exact optimum of the patched LP
        lp.set_constraint_coefficient("c1", x, 2)
        lp.set_constraint_coefficient("c1", y, 1)
        sol = inst.solve(warm=True)
        assert inst.fallbacks == 1
        assert not inst.last_restarted
        assert sol.objective == 8  # 2x + y <= 4 twice: best is (0, 4)

    def test_eta_overflow_refactorises_mid_solve(self):
        lp = LinearProgram(name="overflow")
        xs = [lp.variable(f"x{i}", lo=0, hi=i + 1) for i in range(6)]
        for i in range(5):
            lp.add_constraint(xs[i] + xs[i + 1] <= 3)
        lp.maximize(lp_sum((i + 1) * x for i, x in enumerate(xs)))
        # eta_limit=1: every pivot overflows the eta file and triggers
        # an immediate refactorisation
        tight = SimplexInstance(lp, engine="revised", eta_limit=1)
        sol_tight = tight.solve()
        assert tight.last_pivots > 1
        fs = tight.last_factor_stats
        assert fs["refactorisations"] >= tight.last_pivots
        assert fs["eta_len_max"] == 1
        # a roomy eta file never refactorises mid-solve ...
        roomy = SimplexInstance(lp, engine="revised", eta_limit=10_000)
        sol_roomy = roomy.solve()
        assert roomy.last_factor_stats["refactorisations"] == 1
        # ... and the mid-solve refactorisations change nothing
        assert sol_tight.objective == sol_roomy.objective
        assert sol_tight.values == sol_roomy.values

    def test_pivot_cap_excludes_refactorisation_ops(self):
        # equality rows force artificials, whose drive-out exchanges are
        # basis operations, not simplex pivots: a cap of exactly the
        # pivot count must therefore not trip
        lp = LinearProgram(name="cap")
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        z = lp.variable("z", lo=0)
        lp.add_constraint(x + y + z == 3)
        lp.add_constraint(x - y == 1)
        lp.add_constraint(x + 2 * z <= 4)
        lp.maximize(x + 2 * y + 3 * z)
        reference = SimplexInstance(lp, engine="revised")
        expected = reference.solve()
        pivots = reference.last_pivots
        assert pivots > 0
        capped = SimplexInstance(lp, engine="revised", max_pivots=pivots)
        sol = capped.solve()
        assert sol.objective == expected.objective
        # one fewer must trip, proving the cap is measured in pivots
        with pytest.raises(LPError, match="pivot safety cap"):
            SimplexInstance(lp, engine="revised",
                            max_pivots=pivots - 1).solve()

    def test_warm_pivot_cap_excludes_warm_install(self):
        lp, x, y = self._two_var_model()
        probe = SimplexInstance(lp, engine="revised")
        probe.solve()
        lp.set_constraint_coefficient("c1", y, 3)
        expected = probe.solve(warm=True)
        assert probe.last_restarted
        warm_pivots = probe.last_pivots
        # replay with the cap set to exactly the warm pivot count: the
        # warm install's LU + any exchange bookkeeping must not count
        lp2, x2, y2 = self._two_var_model()
        inst = SimplexInstance(lp2, engine="revised")
        inst.solve()
        lp2.set_constraint_coefficient("c1", y2, 3)
        inst.max_pivots = warm_pivots
        sol = inst.solve(warm=True)
        assert inst.last_restarted
        assert sol.objective == expected.objective
        assert inst.last_pivots == warm_pivots

    def test_unknown_engine_rejected(self):
        lp, _, _ = self._two_var_model()
        with pytest.raises(LPError, match="unknown simplex engine"):
            SimplexInstance(lp, engine="dense")

    def test_default_engine_is_revised(self):
        assert DEFAULT_ENGINE == "revised"
        lp, _, _ = self._two_var_model()
        inst = SimplexInstance(lp)
        inst.solve()
        assert inst.last_factor_stats["refactorisations"] >= 1
        assert inst.last_factor_stats["ftran_ops"] > 0
        assert inst.last_factor_stats["btran_ops"] > 0

    def test_tableau_engine_reports_zero_factor_stats(self):
        lp, _, _ = self._two_var_model()
        inst = SimplexInstance(lp, engine="tableau")
        inst.solve()
        assert all(v == 0 for v in inst.last_factor_stats.values())

    def test_stats_carry_factor_totals(self):
        lp, x, y = self._two_var_model()
        inst = SimplexInstance(lp, engine="revised")
        inst.solve()
        lp.set_constraint_coefficient("c1", y, 3)
        inst.solve(warm=True)
        stats = inst.stats()
        assert stats["refactorisations"] >= 2  # one LU per solve minimum
        assert stats["ftran_ops"] > 0 and stats["btran_ops"] > 0
        assert stats["lu_basis_nnz"] > 0
        assert stats["lu_nnz"] >= stats["refactorisations"]


# ----------------------------------------------------------------------
# counters through the service layer
# ----------------------------------------------------------------------
class TestServiceCounters:
    def test_incremental_accumulates_factor_stats(self):
        from repro.platform import generators
        from repro.service.incremental import IncrementalSolver

        inc = IncrementalSolver()
        g = generators.star(4)
        inc.solve_master_slave(g, "M")
        cold = inc.stats
        assert cold.refactorisations >= 1
        assert cold.ftran_ops > 0 and cold.btran_ops > 0
        assert cold.lu_basis_nnz > 0
        inc.solve_master_slave(g.scale(compute=2), "M")
        assert inc.stats.warm_solves == 1
        assert inc.stats.basis_fallbacks == 0

    def test_prometheus_exposes_factor_metrics(self):
        from repro.service.metrics import render_prometheus

        snapshot = {
            "incremental": {
                "hot_models": 2,
                "warm_solves": 5,
                "refactorisations": 7,
                "eta_len_max": 3,
                "ftran_ops": 40,
                "btran_ops": 21,
                "lu_fill_nnz": 90,
                "lu_basis_nnz": 60,
            },
        }
        text = render_prometheus(snapshot)
        assert "repro_warm_refactorisations_total 7" in text
        assert "repro_warm_ftran_ops_total 40" in text
        assert "repro_warm_btran_ops_total 21" in text
        # high-water marks are gauges, not counters
        assert "repro_warm_eta_len_max 3" in text
        assert "repro_warm_eta_len_max_total" not in text
        assert "repro_warm_lu_fill_ratio 1.5" in text

    def test_warm_stats_declare_factor_fields(self):
        from repro.service.incremental import WarmSolveStats

        stats = WarmSolveStats()
        snap = stats.as_dict()
        for key in ("refactorisations", "eta_len_max", "ftran_ops",
                    "btran_ops", "lu_fill_nnz", "lu_basis_nnz"):
            assert key in snap
            assert snap[key] == 0
