"""The ``repro lint`` framework: registry, pragmas, baselines, reporters,
the five rules against their fixture corpus, the repo-wide green gate,
and regression tests for the real findings this gate surfaced and fixed.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from pathlib import Path

import pytest

from repro.lint import (
    Checker,
    Finding,
    LintError,
    REPORT_VERSION,
    checker_descriptions,
    load_baseline,
    register_checker,
    registered_rules,
    run_lint,
    unregister_checker,
    write_baseline,
)
from repro.lint.cli import main as lint_main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
RULES = ("asyncio", "drift", "exactness", "locks", "tracing")


def lint_file(path, **kwargs):
    return run_lint([str(path)], root=str(REPO), **kwargs)


# ----------------------------------------------------------------------
# framework: registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_rules_registered(self):
        assert set(RULES) <= set(registered_rules())

    def test_descriptions_cover_every_rule(self):
        descriptions = checker_descriptions()
        for rule in RULES:
            assert descriptions[rule]

    def test_duplicate_rule_rejected(self):
        class Dup(Checker):
            rule = "exactness"

        with pytest.raises(LintError, match="duplicate"):
            register_checker(Dup)

    def test_unnamed_checker_rejected(self):
        class Nameless(Checker):
            pass

        with pytest.raises(LintError, match="no rule name"):
            register_checker(Nameless)

    def test_custom_checker_runs_and_unregisters(self, tmp_path):
        class TodoChecker(Checker):
            rule = "todo-test-rule"
            description = "flags TODO comments"

            def check(self, module):
                for line, col, text in module.comments:
                    if "TODO" in text:
                        yield Finding(self.rule, module.display_path,
                                      line, col, "TODO found")

        register_checker(TodoChecker)
        try:
            target = tmp_path / "mod.py"
            target.write_text("x = 1  # TODO: later\n")
            report = run_lint([str(target)], rules=["todo-test-rule"])
            assert [f.message for f in report.findings] == ["TODO found"]
        finally:
            unregister_checker("todo-test-rule")
        with pytest.raises(LintError, match="unknown rule"):
            run_lint([str(tmp_path)], rules=["todo-test-rule"])

    def test_unknown_path_raises(self):
        with pytest.raises(LintError, match="no such file"):
            run_lint([str(REPO / "does-not-exist")])

    def test_syntax_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = run_lint([str(bad)])
        assert [f.rule for f in report.findings] == ["syntax"]


# ----------------------------------------------------------------------
# framework: suppression pragmas
# ----------------------------------------------------------------------
class TestPragmas:
    def violation(self):
        return ("# repro-lint: scope(exactness)\n"
                "x = 0.5\n")

    def test_finding_without_pragma(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(self.violation())
        report = run_lint([str(mod)], rules=["exactness"])
        assert len(report.findings) == 1
        assert not report.suppressed

    def test_trailing_line_allow(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\n"
                       "x = 0.5  # repro-lint: allow(exactness) — why\n")
        report = run_lint([str(mod)], rules=["exactness"])
        assert not report.findings
        assert len(report.suppressed) == 1

    def test_trailing_allow_wrong_rule_does_not_suppress(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\n"
                       "x = 0.5  # repro-lint: allow(locks)\n")
        report = run_lint([str(mod)], rules=["exactness"])
        assert len(report.findings) == 1

    def test_trailing_allow_star(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\n"
                       "x = 0.5  # repro-lint: allow(*)\n")
        report = run_lint([str(mod)], rules=["exactness"])
        assert not report.findings

    def test_top_of_file_allow_covers_whole_file(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\n"
                       "# repro-lint: allow(exactness) — float module\n"
                       "x = 0.5\n"
                       "y = 1e-9\n")
        report = run_lint([str(mod)], rules=["exactness"])
        assert not report.findings
        assert len(report.suppressed) == 2

    def test_standalone_mid_file_allow_covers_next_code_line(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\n"
                       "a = 1\n"
                       "# repro-lint: allow(exactness) — justified\n"
                       "# (comment lines in between are skipped)\n"
                       "x = 0.5\n"
                       "y = 2.5\n")
        report = run_lint([str(mod)], rules=["exactness"])
        # the pragma covers x's line only; y still fails
        assert [f.line for f in report.findings] == [6]
        assert [f.line for f in report.suppressed] == [5]

    def test_scope_pragma_opts_into_path_scoped_rule(self, tmp_path):
        scoped = tmp_path / "scoped.py"
        scoped.write_text("# repro-lint: scope(exactness)\nx = 0.5\n")
        unscoped = tmp_path / "unscoped.py"
        unscoped.write_text("x = 0.5\n")
        assert len(run_lint([str(scoped)]).findings) == 1
        assert not run_lint([str(unscoped)]).findings


# ----------------------------------------------------------------------
# framework: baselines
# ----------------------------------------------------------------------
class TestBaseline:
    def test_roundtrip_and_classification(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\nx = 0.5\n")
        first = run_lint([str(mod)], rules=["exactness"])
        assert len(first.findings) == 1

        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), first.findings)
        keys = load_baseline(str(baseline_file))
        assert keys == {first.findings[0].baseline_key}

        second = run_lint([str(mod)], rules=["exactness"], baseline=keys)
        assert second.ok
        assert len(second.baselined) == 1
        assert not second.findings

    def test_baseline_survives_line_drift(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("# repro-lint: scope(exactness)\nx = 0.5\n")
        keys = {f.baseline_key for f in run_lint([str(mod)]).findings}
        # unrelated edit moves the finding down two lines
        mod.write_text("# repro-lint: scope(exactness)\na = 1\nb = 2\nx = 0.5\n")
        report = run_lint([str(mod)], baseline=keys)
        assert report.ok and len(report.baselined) == 1

    def test_unreadable_baseline_raises(self, tmp_path):
        bad = tmp_path / "nope.json"
        bad.write_text("[]")
        with pytest.raises(LintError, match="not a repro-lint baseline"):
            load_baseline(str(bad))


# ----------------------------------------------------------------------
# framework: reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_json_schema(self):
        report = lint_file(FIXTURES / "exactness_bad.py")
        data = report.as_dict()
        assert data["version"] == REPORT_VERSION
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert set(data["rules"]) >= set(RULES)
        assert isinstance(data["suppressed_count"], int)
        assert isinstance(data["baselined_count"], int)
        assert data["baselined"] == []
        for finding in data["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert finding["rule"] == "exactness"
        assert json.loads(json.dumps(data)) == data

    def test_text_render_mentions_counts(self):
        ok = lint_file(FIXTURES / "exactness_ok.py")
        assert "repro lint OK" in ok.render_text()
        bad = lint_file(FIXTURES / "exactness_bad.py")
        text = bad.render_text()
        assert "repro lint FAILED" in text
        assert "[exactness]" in text

    def test_cli_exit_codes_and_json(self, capsys):
        assert lint_main([str(FIXTURES / "exactness_ok.py")]) == 0
        assert lint_main([str(FIXTURES / "exactness_bad.py")]) == 1
        capsys.readouterr()
        assert lint_main(["--json", str(FIXTURES / "exactness_bad.py")]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False and data["findings"]

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_cli_write_baseline_then_green(self, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        bad = str(FIXTURES / "exactness_bad.py")
        assert lint_main(["--write-baseline", str(baseline), bad]) == 0
        assert lint_main(["--baseline", str(baseline), bad]) == 0
        capsys.readouterr()

    def test_cli_bad_rule_is_usage_error(self, capsys):
        assert lint_main(["--rules", "no-such-rule",
                          str(FIXTURES / "exactness_ok.py")]) == 2


# ----------------------------------------------------------------------
# the five rules against their fixture corpus
# ----------------------------------------------------------------------
class TestFixtureCorpus:
    @pytest.mark.parametrize("rule", RULES)
    def test_ok_fixture_is_clean(self, rule):
        report = lint_file(FIXTURES / f"{rule}_ok.py")
        assert report.ok, report.render_text()

    @pytest.mark.parametrize("rule", RULES)
    def test_bad_fixture_fails_with_its_rule(self, rule):
        report = lint_file(FIXTURES / f"{rule}_bad.py")
        assert not report.ok
        assert {f.rule for f in report.findings} == {rule}

    def test_exactness_catches_all_four_shapes(self):
        report = lint_file(FIXTURES / "exactness_bad.py")
        messages = "\n".join(f.message for f in report.findings)
        assert "float literal 0.5" in messages
        assert "float() coercion" in messages
        assert "math.sqrt" in messages
        assert "1e-09" in messages

    def test_exactness_factor_ok_fixture_is_clean(self):
        report = lint_file(FIXTURES / "exactness_factor_ok.py")
        assert report.ok, report.render_text()

    def test_exactness_factor_bad_fixture_fails(self):
        report = lint_file(FIXTURES / "exactness_factor_bad.py")
        assert not report.ok
        assert {f.rule for f in report.findings} == {"exactness"}
        messages = "\n".join(f.message for f in report.findings)
        assert "float() coercion" in messages
        assert "math.log" in messages
        assert "1e-12" in messages
        assert "float literal 0.0" in messages

    def test_factor_module_in_exact_path_without_pragma(self, tmp_path):
        # repro/lp/factor.py is on the EXACT_FILES allowlist: a float
        # leaking into it must be flagged with no scope pragma needed
        target = tmp_path / "repro" / "lp"
        target.mkdir(parents=True)
        mod = target / "factor.py"
        mod.write_text("PIVOT_TOL = 1e-9\n")
        report = run_lint([str(mod)], root=str(tmp_path))
        assert [f.rule for f in report.findings] == ["exactness"]

    def test_locks_catches_write_read_and_closure(self):
        report = lint_file(FIXTURES / "locks_bad.py")
        lines = {f.line for f in report.findings}
        source = (FIXTURES / "locks_bad.py").read_text().splitlines()
        flagged = {source[line - 1].strip() for line in lines}
        assert any("self.count += 1" in text for text in flagged)
        assert any("return self.count" in text for text in flagged)
        assert any("lambda" in text for text in flagged)

    def test_locks_inherited_guards_enforced(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import threading\n"
            "class Base:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # guarded-by: _lock\n"
            "class Child(Base):\n"
            "    def bad(self):\n"
            "        return self.n\n")
        report = run_lint([str(mod)], rules=["locks"])
        assert len(report.findings) == 1
        assert "Child.bad" in report.findings[0].message

    def test_locks_dangling_annotation_flagged(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("import threading\n"
                       "# guarded-by: _lock\n"
                       "X = 3\n")
        report = run_lint([str(mod)], rules=["locks"])
        assert len(report.findings) == 1
        assert "dangling" in report.findings[0].message

    def test_locks_caller_holds_ok_fixture_is_clean(self):
        # the heat-sketch shape: lock-holding methods factor work into
        # '# caller-holds: _lock' helpers; every call site holds the lock
        report = lint_file(FIXTURES / "locks_heat_ok.py")
        assert report.ok, report.render_text()

    def test_locks_caller_holds_bad_fixture_catches_all_three(self):
        report = lint_file(FIXTURES / "locks_heat_bad.py")
        messages = [f.message for f in report.findings]
        assert all(f.rule == "locks" for f in report.findings)
        # 1. helper called without the lock held
        assert any("self._evict_min() called without holding" in m
                   for m in messages)
        # 2. unannotated helper touching guarded state
        assert any("self._heap accessed outside" in m
                   and "_compact" in m for m in messages)
        assert any("self._counts accessed outside" in m
                   and "_compact" in m for m in messages)
        # 3. dangling caller-holds annotation (not on a def header)
        assert any("dangling caller-holds" in m for m in messages)

    def test_locks_caller_holds_inherited_into_subclass(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import threading\n"
            "class Base:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.n = 0  # guarded-by: _lock\n"
            "    def _bump(self):  # caller-holds: _lock\n"
            "        self.n += 1\n"
            "class Child(Base):\n"
            "    def bad(self):\n"
            "        self._bump()\n"
            "    def good(self):\n"
            "        with self._lock:\n"
            "            self._bump()\n")
        report = run_lint([str(mod)], rules=["locks"])
        assert len(report.findings) == 1
        assert "Child.bad" in report.findings[0].message
        assert "caller-holds" in report.findings[0].message

    def test_drift_names_the_dropped_key_and_orphan_kind(self):
        report = lint_file(FIXTURES / "drift_bad.py")
        messages = "\n".join(f.message for f in report.findings)
        assert "'widget'" in messages and "b" in messages
        assert "'gadget'" in messages and "no decoder" in messages

    def test_tracing_catches_naked_span_and_wall_clock(self):
        report = lint_file(FIXTURES / "tracing_bad.py")
        messages = "\n".join(f.message for f in report.findings)
        assert "start_trace" in messages
        assert "span(...)" in messages
        assert "time.time()" in messages

    def test_asyncio_catches_every_blocking_shape(self):
        report = lint_file(FIXTURES / "asyncio_bad.py")
        messages = "\n".join(f.message for f in report.findings)
        assert "time.sleep()" in messages
        assert "socket.create_connection()" in messages
        assert ".recv()" in messages
        assert ".ping()" in messages and ".request()" in messages
        assert ".result()" in messages
        assert "sync 'with _engine_lock:'" in messages

    def test_asyncio_exempts_nested_sync_defs_and_awaits(self):
        # the ok fixture's executor jobs hold locks and sleep — exempt
        # because they run on threads; its one .result() carries an
        # allow pragma, so it lands in suppressed, never in findings
        report = lint_file(FIXTURES / "asyncio_ok.py")
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["asyncio"]


# ----------------------------------------------------------------------
# the repo-wide gate (the acceptance criterion, as a test)
# ----------------------------------------------------------------------
class TestRepoGate:
    def test_src_tree_is_green(self):
        report = run_lint([str(REPO / "src")], root=str(REPO))
        assert report.ok, report.render_text()

    def test_no_baselined_debt_for_exactness_and_drift(self):
        # acceptance: suppressions for these rules are justified pragmas
        # in the code, never baseline entries
        report = run_lint([str(REPO / "src")], root=str(REPO))
        assert not report.baselined

    def test_walk_skips_fixture_corpus(self):
        report = run_lint([str(REPO / "tests")], root=str(REPO))
        assert report.ok, report.render_text()
        checked = {os.path.basename(p) for p in
                   (str(REPO / "tests" / "lint_fixtures"),)}
        assert checked  # fixtures directory exists ...
        assert report.files_checked > 0
        # ... but none of its deliberate violations leaked into the run
        assert not any("lint_fixtures" in f.path for f in report.findings)


# ----------------------------------------------------------------------
# regression tests for the real findings this PR fixed
# ----------------------------------------------------------------------
class TestFixedFindings:
    def test_dijkstra_heap_keys_are_exact(self):
        # two path costs closer than one double ulp: float heap keys
        # finalised 'a' before the truly shorter path through 'b'
        # relaxed it, leaving a's successor 'c' with a stale distance
        from repro.core.steiner import _dijkstra_from_set
        from repro.platform.graph import Platform

        eps = Fraction(1, 10**40)
        delta = Fraction(1, 10**50)
        p = Platform("tie")
        for n in ("r", "a", "b", "c"):
            p.add_node(n, w=1)
        p.add_edge("r", "a", c=Fraction(1, 3) + eps)
        p.add_edge("r", "b", c=Fraction(1, 3))
        p.add_edge("b", "a", c=delta)
        p.add_edge("a", "c", c=1)
        dist, parent = _dijkstra_from_set(p, {"r"})
        assert dist["a"] == Fraction(1, 3) + delta
        assert parent["a"] == ("b", "a")
        assert dist["c"] == Fraction(1, 3) + delta + 1

    def test_residual_tree_heap_keys_are_exact(self):
        from repro.core.trees import _residual_shortest_path_tree
        from repro.platform.graph import Platform

        eps = Fraction(1, 10**40)
        p = Platform("tie")
        for n in ("r", "a", "b", "t"):
            p.add_node(n, w=1)
        p.add_edge("r", "a", c=Fraction(1, 3) + eps)
        p.add_edge("r", "b", c=Fraction(1, 3))
        p.add_edge("a", "t", c=Fraction(1))
        p.add_edge("b", "t", c=Fraction(1))
        plenty = {n: Fraction(100) for n in ("r", "a", "b", "t")}
        tree = _residual_shortest_path_tree(
            p, "r", {"t"}, dict(plenty), dict(plenty))
        # the truly cheaper branch must win despite the float tie
        assert ("r", "b") in tree and ("b", "t") in tree

    def test_hopcroft_karp_integer_sentinel(self):
        from repro.schedule.matching import hopcroft_karp

        # behaviour unchanged by the float("inf") -> int sentinel swap
        adjacency = {i: [j for j in range(6) if (i + j) % 2 == 0]
                     for i in range(6)}
        matching = hopcroft_karp(adjacency)
        assert len(matching) == 6
        empty = hopcroft_karp({})
        assert empty == {}

    def test_matching_module_is_float_free(self):
        report = run_lint(
            [str(REPO / "src/repro/schedule/matching.py")], root=str(REPO))
        assert report.ok and not report.suppressed
