"""Exact simplex: unit cases, pathological cases, and a property test
cross-checking against scipy's HiGHS on random feasible LPs."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import (
    InfeasibleError,
    LinearProgram,
    lp_sum,
    UnboundedError,
)

coef = st.integers(min_value=-5, max_value=5)


class TestBasic:
    def test_textbook_max(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y <= 4)
        lp.add_constraint(x + 3 * y <= 6)
        lp.maximize(x + 2 * y)
        sol = lp.solve()
        assert sol.objective == 5
        assert sol[x] == 3 and sol[y] == 1

    def test_min_with_free_variable(self):
        lp = LinearProgram()
        x = lp.variable("x")  # free
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y >= 2)
        lp.minimize(x + 2 * y)
        sol = lp.solve()
        assert sol.objective == 2

    def test_upper_bound_only_variable(self):
        lp = LinearProgram()
        x = lp.variable("x", hi=3)
        lp.maximize(x)
        sol = lp.solve()
        assert sol.objective == 3

    def test_equality_constraints(self):
        lp = LinearProgram()
        a = lp.variable("a", lo=0, hi=1)
        b = lp.variable("b", lo=0, hi=1)
        c = lp.variable("c", lo=0)
        lp.add_constraint(a + b + c == Fraction(3, 2))
        lp.add_constraint(c <= Fraction(1, 3))
        lp.maximize(2 * a + b + 3 * c)
        sol = lp.solve()
        assert sol.objective == Fraction(19, 6)
        lp.check(sol)

    def test_exact_fractions_in_data(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.add_constraint(x * Fraction(1, 3) <= Fraction(1, 7))
        lp.maximize(x)
        assert lp.solve().objective == Fraction(3, 7)

    def test_objective_constant_offset(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.maximize(x + 10)
        assert lp.solve().objective == 11

    def test_degenerate_redundant_equalities(self):
        """Redundant rows leave an artificial basic at zero — must not crash."""
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y == 2)
        lp.add_constraint(2 * x + 2 * y == 4)  # redundant
        lp.maximize(x)
        sol = lp.solve()
        assert sol.objective == 2

    def test_zero_objective(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x >= Fraction(1, 2))
        lp.maximize(x * 0)
        assert lp.solve().objective == 0


class TestInfeasibleUnbounded:
    def test_infeasible_bounds_vs_constraints(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x >= 2)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_infeasible_equalities(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y == 1)
        lp.add_constraint(x + y == 2)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_constant_infeasible_row(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.add_constraint((x - x) >= 1)  # 0 >= 1
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.maximize(x)
        with pytest.raises(UnboundedError):
            lp.solve()

    def test_unbounded_direction_in_plane(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x - y <= 1)
        lp.maximize(x)
        with pytest.raises(UnboundedError):
            lp.solve()

    def test_scipy_infeasible_matches(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x >= 2)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve(backend="scipy")


@st.composite
def random_feasible_lp(draw):
    """A bounded LP feasible at the origin: Ax <= b with b >= 0, x in
    [0, 10]^n, random objective."""
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=5))
    rows = [
        [draw(coef) for _ in range(n)]
        for _ in range(m)
    ]
    rhs = [draw(st.integers(min_value=0, max_value=20)) for _ in range(m)]
    obj = [draw(coef) for _ in range(n)]
    return n, rows, rhs, obj


class TestAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(random_feasible_lp())
    def test_exact_matches_highs(self, data):
        n, rows, rhs, obj = data

        def build():
            lp = LinearProgram()
            xs = [lp.variable(f"x{i}", lo=0, hi=10) for i in range(n)]
            for row, b in zip(rows, rhs):
                lp.add_constraint(
                    lp_sum(c * x for c, x in zip(row, xs)) <= b
                )
            lp.maximize(lp_sum(c * x for c, x in zip(obj, xs)))
            return lp

        exact = build().solve(backend="exact")
        approx = build().solve(backend="scipy")
        assert abs(float(exact.objective) - float(approx.objective)) < 1e-6
        # the exact solution must satisfy its own model exactly
        build().check(exact)

    @settings(max_examples=25, deadline=None)
    @given(random_feasible_lp())
    def test_solution_is_feasible_and_extreme(self, data):
        n, rows, rhs, obj = data
        lp = LinearProgram()
        xs = [lp.variable(f"x{i}", lo=0, hi=10) for i in range(n)]
        for row, b in zip(rows, rhs):
            lp.add_constraint(lp_sum(c * x for c, x in zip(row, xs)) <= b)
        lp.maximize(lp_sum(c * x for c, x in zip(obj, xs)))
        sol = lp.solve()
        lp.check(sol)
        # optimality spot-check: no +/- unit move improves the objective
        for i, x in enumerate(xs):
            for delta in (Fraction(1, 7), Fraction(-1, 7)):
                trial = dict(sol.values)
                trial[x] = trial[x] + delta
                if trial[x] < 0 or trial[x] > 10:
                    continue
                ok = all(
                    cons.violation(trial) == 0 for cons in lp.constraints
                )
                if ok:
                    trial_obj = lp.objective.value(trial)
                    assert trial_obj <= sol.objective
