"""Exact simplex: unit cases, pathological cases, and a property test
cross-checking against scipy's HiGHS on random feasible LPs."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import (
    InfeasibleError,
    LinearProgram,
    lp_sum,
    UnboundedError,
)

coef = st.integers(min_value=-5, max_value=5)


class TestBasic:
    def test_textbook_max(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y <= 4)
        lp.add_constraint(x + 3 * y <= 6)
        lp.maximize(x + 2 * y)
        sol = lp.solve()
        assert sol.objective == 5
        assert sol[x] == 3 and sol[y] == 1

    def test_min_with_free_variable(self):
        lp = LinearProgram()
        x = lp.variable("x")  # free
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y >= 2)
        lp.minimize(x + 2 * y)
        sol = lp.solve()
        assert sol.objective == 2

    def test_upper_bound_only_variable(self):
        lp = LinearProgram()
        x = lp.variable("x", hi=3)
        lp.maximize(x)
        sol = lp.solve()
        assert sol.objective == 3

    def test_equality_constraints(self):
        lp = LinearProgram()
        a = lp.variable("a", lo=0, hi=1)
        b = lp.variable("b", lo=0, hi=1)
        c = lp.variable("c", lo=0)
        lp.add_constraint(a + b + c == Fraction(3, 2))
        lp.add_constraint(c <= Fraction(1, 3))
        lp.maximize(2 * a + b + 3 * c)
        sol = lp.solve()
        assert sol.objective == Fraction(19, 6)
        lp.check(sol)

    def test_exact_fractions_in_data(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.add_constraint(x * Fraction(1, 3) <= Fraction(1, 7))
        lp.maximize(x)
        assert lp.solve().objective == Fraction(3, 7)

    def test_objective_constant_offset(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.maximize(x + 10)
        assert lp.solve().objective == 11

    def test_degenerate_redundant_equalities(self):
        """Redundant rows leave an artificial basic at zero — must not crash."""
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y == 2)
        lp.add_constraint(2 * x + 2 * y == 4)  # redundant
        lp.maximize(x)
        sol = lp.solve()
        assert sol.objective == 2

    def test_zero_objective(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x >= Fraction(1, 2))
        lp.maximize(x * 0)
        assert lp.solve().objective == 0


class TestInfeasibleUnbounded:
    def test_infeasible_bounds_vs_constraints(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x >= 2)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_infeasible_equalities(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y == 1)
        lp.add_constraint(x + y == 2)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_constant_infeasible_row(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.add_constraint((x - x) >= 1)  # 0 >= 1
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_unbounded(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        lp.maximize(x)
        with pytest.raises(UnboundedError):
            lp.solve()

    def test_unbounded_direction_in_plane(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x - y <= 1)
        lp.maximize(x)
        with pytest.raises(UnboundedError):
            lp.solve()

    def test_scipy_infeasible_matches(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        lp.add_constraint(x >= 2)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve(backend="scipy")


@st.composite
def random_feasible_lp(draw):
    """A bounded LP feasible at the origin: Ax <= b with b >= 0, x in
    [0, 10]^n, random objective."""
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=5))
    rows = [
        [draw(coef) for _ in range(n)]
        for _ in range(m)
    ]
    rhs = [draw(st.integers(min_value=0, max_value=20)) for _ in range(m)]
    obj = [draw(coef) for _ in range(n)]
    return n, rows, rhs, obj


class TestAgainstScipy:
    @settings(max_examples=40, deadline=None)
    @given(random_feasible_lp())
    def test_exact_matches_highs(self, data):
        n, rows, rhs, obj = data

        def build():
            lp = LinearProgram()
            xs = [lp.variable(f"x{i}", lo=0, hi=10) for i in range(n)]
            for row, b in zip(rows, rhs):
                lp.add_constraint(
                    lp_sum(c * x for c, x in zip(row, xs)) <= b
                )
            lp.maximize(lp_sum(c * x for c, x in zip(obj, xs)))
            return lp

        exact = build().solve(backend="exact")
        approx = build().solve(backend="scipy")
        assert abs(float(exact.objective) - float(approx.objective)) < 1e-6
        # the exact solution must satisfy its own model exactly
        build().check(exact)

    @settings(max_examples=25, deadline=None)
    @given(random_feasible_lp())
    def test_solution_is_feasible_and_extreme(self, data):
        n, rows, rhs, obj = data
        lp = LinearProgram()
        xs = [lp.variable(f"x{i}", lo=0, hi=10) for i in range(n)]
        for row, b in zip(rows, rhs):
            lp.add_constraint(lp_sum(c * x for c, x in zip(row, xs)) <= b)
        lp.maximize(lp_sum(c * x for c, x in zip(obj, xs)))
        sol = lp.solve()
        lp.check(sol)
        # optimality spot-check: no +/- unit move improves the objective
        for i, x in enumerate(xs):
            for delta in (Fraction(1, 7), Fraction(-1, 7)):
                trial = dict(sol.values)
                trial[x] = trial[x] + delta
                if trial[x] < 0 or trial[x] > 10:
                    continue
                ok = all(
                    cons.violation(trial) == 0 for cons in lp.constraints
                )
                if ok:
                    trial_obj = lp.objective.value(trial)
                    assert trial_obj <= sol.objective


# ----------------------------------------------------------------------
# SimplexInstance: basis-reusing warm re-solves
# ----------------------------------------------------------------------
class TestSimplexInstance:
    @staticmethod
    def _model():
        """max x + 2y + z with named, patchable constraints."""
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        z = lp.variable("z", lo=0)
        lp.add_constraint(x + y + z <= 4, name="c1")
        lp.add_constraint(x + 3 * y <= 6, name="c2")
        lp.add_constraint(y + 2 * z <= 5, name="c3")
        lp.maximize(x + 2 * y + z)
        return lp, (x, y, z)

    @staticmethod
    def _fresh_objective(lp):
        from repro.lp import SimplexInstance

        return SimplexInstance(lp).solve().objective

    def test_cold_matches_solve_exact(self):
        from repro.lp import SimplexInstance, solve_exact

        lp, _ = self._model()
        inst = SimplexInstance(lp)
        assert inst.solve().objective == solve_exact(lp).objective
        assert inst.solves == 1 and inst.basis_restarts == 0

    def test_warm_after_coefficient_patch_is_exact(self):
        from repro.lp import SimplexInstance

        lp, (x, y, z) = self._model()
        inst = SimplexInstance(lp)
        inst.solve()
        for coef in (Fraction(1, 2), Fraction(5, 3), Fraction(7, 2)):
            lp.set_constraint_coefficient("c2", y, coef)
            lp.set_objective_coefficient(y, coef + 1)
            warm = inst.solve(warm=True)
            assert warm.objective == self._fresh_objective(lp)
            lp.check(warm)
        assert inst.basis_restarts + inst.fallbacks == 3

    def test_phase1_skipped_when_basis_stays_feasible(self):
        from repro.lp import SimplexInstance

        lp, (x, y, z) = self._model()
        inst = SimplexInstance(lp)
        inst.solve()
        # objective-only change keeps the basic point primal feasible
        lp.set_objective_coefficient(x, Fraction(3))
        warm = inst.solve(warm=True)
        assert inst.last_restarted and inst.last_phase1_skipped
        assert inst.phase1_skips == 1
        assert warm.objective == self._fresh_objective(lp)

    def test_rhs_mutation_repairs_feasibility(self):
        from repro.lp import SimplexInstance

        lp, (x, y, z) = self._model()
        inst = SimplexInstance(lp)
        first = inst.solve()
        # shrink c1's rhs: expr <= 4 became expr - 4 <= 0; moving the
        # constant mutates the rhs in place, making the old basis primal
        # infeasible (repaired by the dual or restricted-phase-1 path)
        cons = lp.constraint_by_name("c1")
        cons.expr.constant += 2  # now expr <= 2
        warm = inst.solve(warm=True)
        assert warm.objective < first.objective
        assert warm.objective == self._fresh_objective(lp)
        lp.check(warm)
        assert inst.last_restarted
        assert inst.dual_repairs + inst.primal_repairs == 1

    def test_structure_change_falls_back_to_cold(self):
        from repro.lp import SimplexInstance

        lp, (x, y, z) = self._model()
        inst = SimplexInstance(lp)
        inst.solve()
        lp.add_constraint(x + z <= 3, name="c4")  # new row: new structure
        warm = inst.solve(warm=True)
        assert inst.fallbacks == 1 and not inst.last_restarted
        assert warm.objective == self._fresh_objective(lp)

    def test_warm_flag_off_never_restarts(self):
        from repro.lp import SimplexInstance

        lp, (x, y, z) = self._model()
        inst = SimplexInstance(lp)
        inst.solve()
        inst.solve(warm=False)
        assert inst.basis_restarts == 0 and inst.fallbacks == 0

    def test_ssms_warm_restart_on_platform_drift(self):
        from repro.core.master_slave import (
            build_ssms_lp,
            patch_ssms_coefficients,
        )
        from repro.lp import SimplexInstance
        from repro.platform import generators

        g = generators.paper_figure1()
        lp, handles = build_ssms_lp(g, "P1")
        inst = SimplexInstance(lp)
        cold = inst.solve()
        mutated = g.scale(compute=Fraction(5, 4), comm=Fraction(4, 5))
        patch_ssms_coefficients(lp, handles, mutated, "P1")
        warm = inst.solve(warm=True)
        lp2, _ = build_ssms_lp(mutated, "P1")
        ref = SimplexInstance(lp2).solve()
        assert warm.objective == ref.objective
        assert inst.last_restarted
        assert warm.pivots < ref.pivots or warm.pivots == 0


class TestPivotSafetyCap:
    def test_cap_raises_a_clear_error_naming_the_lp_size(self):
        from repro.lp import LPError

        lp = LinearProgram("capped-lp")
        xs = [lp.variable(f"x{i}", lo=0) for i in range(6)]
        for i in range(5):
            lp.add_constraint(xs[i] + xs[i + 1] <= i + 1)
        lp.maximize(lp_sum(xs))
        with pytest.raises(LPError, match=r"pivot safety cap.*'capped-lp'"):
            lp.solve(max_iterations=1)
        with pytest.raises(LPError, match=r"m=\d+ rows, n=\d+ columns"):
            lp.solve(max_iterations=1)

    def test_degenerate_lp_terminates_under_the_default_cap(self):
        # Beale's classic cycling example: highly degenerate (every basic
        # feasible solution of phase 2 ties at zero); the stall safeguard
        # must degrade to Bland's rule and still reach the optimum (1/20)
        lp = LinearProgram("beale")
        x1 = lp.variable("x1", lo=0)
        x2 = lp.variable("x2", lo=0)
        x3 = lp.variable("x3", lo=0)
        x4 = lp.variable("x4", lo=0)
        lp.add_constraint(
            Fraction(1, 4) * x1 - 60 * x2 - Fraction(1, 25) * x3 + 9 * x4 <= 0
        )
        lp.add_constraint(
            Fraction(1, 2) * x1 - 90 * x2 - Fraction(1, 50) * x3 + 3 * x4 <= 0
        )
        lp.add_constraint(x3 <= 1)
        lp.maximize(
            Fraction(3, 4) * x1 - 150 * x2 + Fraction(1, 50) * x3 - 6 * x4
        )
        sol = lp.solve()
        assert sol.objective == Fraction(1, 20)
        assert sol.pivots <= 100  # terminated without spinning to the cap

    def test_warm_solves_share_the_cap(self):
        from repro.lp import LPError, SimplexInstance

        lp = LinearProgram("warm-capped")
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y <= 4, name="c1")
        lp.add_constraint(x + 3 * y <= 6, name="c2")
        lp.maximize(x + 2 * y)
        inst = SimplexInstance(lp, max_pivots=1)
        with pytest.raises(LPError, match="pivot safety cap"):
            inst.solve()
