"""Service-layer tests: fingerprints, cache, broker, warm re-solve, API."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro import INF
from repro.core.dag import TaskGraph
from repro.core.master_slave import solve_master_slave
from repro.platform import generators
from repro.platform.graph import Platform
from repro.platform.serialization import platform_to_dict
from repro.service import (
    Broker,
    IncrementalSolver,
    MetricsRegistry,
    ServiceServer,
    SolutionCache,
    SolveRequest,
    handle_request,
    platform_signature,
    request_fingerprint,
    request_to_dict,
    topology_signature,
)
from repro.service.broker import BrokerError
import repro.service.broker as broker_mod


def _two_node(name="p", w_x=1, w_y=2, c=1) -> Platform:
    g = Platform(name)
    g.add_node("X", w_x)
    g.add_node("Y", w_y)
    g.add_edge("X", "Y", c)
    return g


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_insertion_order_and_name_independent(self):
        a = Platform("first")
        a.add_node("P1", 1)
        a.add_node("P2", 2)
        a.add_edge("P1", "P2", 3)
        a.add_edge("P2", "P1", 4)
        b = Platform("second")
        b.add_node("P2", 2)
        b.add_node("P1", 1)
        b.add_edge("P2", "P1", 4)
        b.add_edge("P1", "P2", 3)
        assert platform_signature(a) == platform_signature(b)
        assert (request_fingerprint(a, "master-slave", source="P1")
                == request_fingerprint(b, "master-slave", source="P1"))

    def test_weight_change_changes_fingerprint(self):
        a = _two_node(w_y=2)
        b = _two_node(w_y=3)
        assert (request_fingerprint(a, "master-slave", source="X")
                != request_fingerprint(b, "master-slave", source="X"))
        c = _two_node(c="1/2")
        assert (request_fingerprint(a, "master-slave", source="X")
                != request_fingerprint(c, "master-slave", source="X"))

    def test_targets_are_a_set(self):
        g = generators.paper_figure2_multicast()
        assert (request_fingerprint(g, "scatter", source="P0",
                                    targets=("P5", "P6"))
                == request_fingerprint(g, "scatter", source="P0",
                                       targets=("P6", "P5")))

    def test_spec_fields_matter(self):
        g = generators.star(3)
        fps = {
            request_fingerprint(g, "master-slave", source="M"),
            request_fingerprint(g, "broadcast", source="M"),
            request_fingerprint(g, "master-slave", source="W1"),
            request_fingerprint(g, "master-slave", source="M",
                                options={"backend": "scipy"}),
        }
        assert len(fps) == 4

    def test_topology_signature_ignores_weights(self):
        a = _two_node(w_y=2, c=1)
        b = _two_node(w_y=7, c="1/3")
        assert topology_signature(a) == topology_signature(b)
        assert platform_signature(a) != platform_signature(b)

    def test_topology_signature_sees_compute_ability(self):
        a = _two_node()
        b = Platform("p")
        b.add_node("X", 1)
        b.add_node("Y", INF)  # forwarder: different LP structure
        b.add_edge("X", "Y", 1)
        assert topology_signature(a) != topology_signature(b)

    def test_defaulted_options_share_the_fingerprint(self, fig1):
        # relying on a default and spelling it out must hit the same entry
        implicit = SolveRequest(problem="master-slave", platform=fig1,
                                master="P1")
        explicit = SolveRequest(problem="master-slave", platform=fig1,
                                master="P1", options={"backend": "exact"})
        assert implicit.fingerprint() == explicit.fingerprint()
        g = generators.paper_figure2_multicast()
        implicit = SolveRequest(problem="scatter", platform=g, source="P0",
                                targets=("P5",))
        explicit = SolveRequest(problem="scatter", platform=g, source="P0",
                                targets=("P5",),
                                options={"port_model": "one-port",
                                         "ports": 1})
        assert implicit.fingerprint() == explicit.fingerprint()

    def test_bare_string_targets_rejected(self, fig1):
        # tuple("P5") would silently become ('P', '5')
        with pytest.raises(BrokerError, match="bare"):
            SolveRequest(problem="scatter", platform=fig1, source="P1",
                         targets="P5")
        # same guard on the wire path
        with Broker(executor="sync") as broker:
            resp = handle_request(broker, {"op": "solve", "request": {
                "problem": "scatter",
                "platform": platform_to_dict(fig1),
                "source": "P1", "targets": "P5"}})
            assert not resp["ok"] and "bare" in resp["error"]

    def test_dag_folded_into_fingerprint(self):
        g = generators.star(2)
        r1 = SolveRequest(problem="dag", platform=g, master="M",
                          dag=TaskGraph.chain([1, 2], [1]))
        r2 = SolveRequest(problem="dag", platform=g, master="M",
                          dag=TaskGraph.chain([1, 3], [1]))
        assert r1.fingerprint() != r2.fingerprint()


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestSolutionCache:
    def test_lru_eviction(self):
        g = generators.star(2)
        cache = SolutionCache(max_size=2)
        cache.put("a", "A", g)
        cache.put("b", "B", g)
        assert cache.get("a").solution == "A"  # refresh a
        cache.put("c", "C", g)                 # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_ttl_expiry_with_fake_clock(self):
        g = generators.star(2)
        now = [0.0]
        cache = SolutionCache(max_size=4, ttl=10.0, clock=lambda: now[0])
        cache.put("a", "A", g)
        now[0] = 5.0
        assert cache.get("a") is not None
        now[0] = 10.5
        assert cache.get("a") is None
        assert cache.stats.expirations == 1
        assert "a" not in cache

    def test_counters(self):
        g = generators.star(2)
        cache = SolutionCache()
        assert cache.get("x") is None
        cache.put("x", 1, g)
        assert cache.get("x") is not None
        st_ = cache.stats
        assert (st_.hits, st_.misses) == (1, 1)
        assert st_.hit_rate == 0.5
        snap = cache.snapshot()
        assert snap["size"] == 1 and snap["hits"] == 1

    def test_invalidate_platform_matches_weight_variants(self):
        g = generators.star(3)
        g2 = g.scale(compute=2)           # weight mutation, same topology
        other = generators.chain(3)
        cache = SolutionCache()
        cache.put("a", 1, g)
        cache.put("b", 2, g2)
        cache.put("c", 3, other)
        assert cache.invalidate_platform(g2) == 2
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.get("c") is not None
        assert cache.stats.invalidations == 2

    def test_invalidate_single_key(self):
        g = generators.star(2)
        cache = SolutionCache()
        cache.put("a", 1, g)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False


# ----------------------------------------------------------------------
# broker
# ----------------------------------------------------------------------
class TestBroker:
    def test_hit_is_exactly_the_cold_solution(self, fig1):
        with Broker(executor="sync") as broker:
            req = SolveRequest(problem="master-slave", platform=fig1,
                               master="P1")
            cold = broker.solve(req)
            hot = broker.solve(req)
            assert not cold.cached and hot.cached
            assert hot.solution is cold.solution
            assert hot.solution.throughput == cold.solution.throughput

    def test_schedule_reconstructed_lazily_on_hit(self, fig1):
        with Broker(executor="sync") as broker:
            bare = SolveRequest(problem="master-slave", platform=fig1,
                                master="P1")
            broker.solve(bare)
            with_sched = SolveRequest(problem="master-slave", platform=fig1,
                                      master="P1", include_schedule=True)
            res = broker.solve(with_sched)
            assert res.cached and res.schedule is not None
            assert res.schedule.throughput == res.solution.throughput

    def test_every_problem_kind_routes(self, fig1):
        fig2 = generators.paper_figure2_multicast()
        star_bi = generators.star(3, bidirectional=True)
        requests = [
            SolveRequest(problem="master-slave", platform=fig1, master="P1"),
            SolveRequest(problem="scatter", platform=fig2, source="P0",
                         targets=("P5", "P6")),
            SolveRequest(problem="gather", platform=star_bi, source="M",
                         targets=("W1", "W2", "W3")),
            SolveRequest(problem="all-to-all", platform=star_bi),
            SolveRequest(problem="broadcast", platform=generators.chain(3),
                         source="N0"),
            SolveRequest(problem="multicast", platform=fig2, source="P0",
                         targets=("P5", "P6")),
            SolveRequest(problem="dag", platform=fig1, master="P1",
                         dag=TaskGraph.chain([1, 2], [1])),
            SolveRequest(problem="multiport", platform=fig1, master="P1",
                         options={"ports": 2}),
            SolveRequest(problem="send-or-receive", platform=fig1,
                         master="P1"),
        ]
        with Broker(workers=4) as broker:
            results = broker.solve_batch(requests)
            assert len(results) == len(requests)
            for res in results:
                assert res.throughput >= 0

    def test_batch_dedupes_by_fingerprint(self, fig1):
        with Broker(executor="sync") as broker:
            req = SolveRequest(problem="master-slave", platform=fig1,
                               master="P1")
            same = SolveRequest(problem="master-slave",
                                platform=fig1.copy("renamed"), master="P1")
            results = broker.solve_batch([req, same, req])
            assert len({r.fingerprint for r in results}) == 1
            assert broker.cache.stats.misses == 1

    def test_inflight_coalescing(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        real = broker_mod.execute_request

        def slow(request):
            started.set()
            assert release.wait(10)
            return real(request)

        monkeypatch.setattr(broker_mod, "execute_request", slow)
        with Broker(workers=2, incremental=False) as broker:
            req = SolveRequest(problem="broadcast",
                               platform=generators.chain(3), source="N0")
            fut1 = broker.submit(req)
            assert started.wait(10)
            fut2 = broker.submit(req)      # same fingerprint, still in flight
            assert broker.coalesced == 1
            release.set()
            r1, r2 = fut1.result(10), fut2.result(10)
            assert r1.throughput == Fraction(1)
            assert r2.solution is r1.solution  # one solve, shared result

    def test_batch_dedup_honours_include_schedule(self, fig1):
        # regression: a deduped request asking for a schedule must not
        # silently inherit the bare result of its fingerprint twin
        with Broker(executor="sync") as broker:
            bare = SolveRequest(problem="master-slave", platform=fig1,
                                master="P1")
            with_sched = SolveRequest(problem="master-slave", platform=fig1,
                                      master="P1", include_schedule=True)
            out = broker.solve_batch([bare, with_sched])
            assert out[1].schedule is not None
            assert out[1].schedule.throughput == out[1].solution.throughput
            assert broker.cache.stats.misses == 1

    def test_coalesced_submit_honours_include_schedule(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        real = broker_mod.execute_request

        def slow(request):
            started.set()
            assert release.wait(10)
            return real(request)

        monkeypatch.setattr(broker_mod, "execute_request", slow)
        fig1 = generators.paper_figure1()
        with Broker(workers=2, incremental=False) as broker:
            bare = SolveRequest(problem="master-slave", platform=fig1,
                                master="P1")
            with_sched = SolveRequest(problem="master-slave", platform=fig1,
                                      master="P1", include_schedule=True)
            fut1 = broker.submit(bare)
            assert started.wait(10)
            fut2 = broker.submit(with_sched)
            assert broker.coalesced == 1
            release.set()
            assert fut1.result(10).schedule is None
            assert fut2.result(10).schedule is not None

    def test_batch_dedup_strips_unrequested_schedule(self, fig1):
        # the mirror case: a bare request deduped onto a schedule-bearing
        # twin must not receive the schedule it did not ask for
        with Broker(executor="sync") as broker:
            with_sched = SolveRequest(problem="master-slave", platform=fig1,
                                      master="P1", include_schedule=True)
            bare = SolveRequest(problem="master-slave", platform=fig1,
                                master="P1")
            out = broker.solve_batch([with_sched, bare])
            assert out[0].schedule is not None
            assert out[1].schedule is None

    def test_batch_dedup_solves_once_but_counts_both_requests(self, fig1):
        with Broker(executor="sync") as broker:
            req = SolveRequest(problem="master-slave", platform=fig1,
                               master="P1")
            out = broker.solve_batch([req, req])
            snap = broker.metrics.snapshot()
            # ONE cold solve, but TWO first-class requests in the metrics:
            # the intra-batch duplicate is a coalesced follower
            assert snap["endpoints"]["solve.cold"]["count"] == 1
            assert snap["endpoints"]["solve.coalesced"]["count"] == 1
            assert snap["total_requests"] == 2
            assert "solve.batch" in snap["endpoints"]
            assert not out[0].coalesced and out[1].coalesced
            assert broker.coalesced == 1
            assert broker.cache.stats.misses == 1

    def test_warm_resolve_equals_cold(self):
        g = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                            link_c=[1, 1, 2, 3])
        mutated = g.scale(compute="3/2", comm="2/3")
        with Broker(executor="sync") as broker:
            first = broker.solve(SolveRequest(problem="master-slave",
                                              platform=g, master="M"))
            second = broker.solve(SolveRequest(problem="master-slave",
                                               platform=mutated, master="M"))
            assert not first.warm and second.warm and not second.cached
            assert (second.solution.throughput
                    == solve_master_slave(mutated, "M").throughput)

    def test_invalidate_platform_drops_entries(self, fig1):
        with Broker(executor="sync") as broker:
            req = SolveRequest(problem="master-slave", platform=fig1,
                               master="P1")
            broker.solve(req)
            assert broker.invalidate_platform(fig1) == 1
            assert not broker.solve(req).cached

    def test_unknown_problem_raises(self, fig1):
        with Broker(executor="sync") as broker:
            with pytest.raises(BrokerError, match="unknown problem"):
                broker.solve(SolveRequest(problem="nope", platform=fig1,
                                          master="P1"))

    def test_include_schedule_rejected_for_non_reconstructable(self, fig1):
        with pytest.raises(BrokerError, match="include_schedule"):
            SolveRequest(problem="broadcast", platform=fig1, source="P1",
                         include_schedule=True)

    def test_missing_fields_raise(self, fig1):
        with Broker(executor="sync") as broker:
            with pytest.raises(BrokerError, match="need"):
                broker.solve(SolveRequest(problem="scatter", platform=fig1,
                                          source="P1"))

    def test_snapshot_shape(self, fig1):
        with Broker(executor="sync") as broker:
            broker.solve(SolveRequest(problem="master-slave", platform=fig1,
                                      master="P1"))
            snap = broker.snapshot()
            assert snap["cache"]["misses"] == 1
            assert snap["metrics"]["endpoints"]["solve"]["count"] == 1
            assert snap["incremental"]["full_rebuilds"] == 1


# ----------------------------------------------------------------------
# coalesced followers: first-class in metrics, flagged on the result
# ----------------------------------------------------------------------
class TestCoalescedFollowers:
    def _blocking_solver(self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        real = broker_mod.execute_request

        def slow(request):
            started.set()
            assert release.wait(10)
            return real(request)

        monkeypatch.setattr(broker_mod, "execute_request", slow)
        return started, release

    def test_follower_gets_own_metrics_and_coalesced_flag(self, monkeypatch):
        # regression: followers used to be invisible to /metrics and
        # echoed the leader's cached/warm flags and latency verbatim
        started, release = self._blocking_solver(monkeypatch)
        with Broker(workers=2, incremental=False) as broker:
            req = SolveRequest(problem="broadcast",
                               platform=generators.chain(3), source="N0")
            leader_fut = broker.submit(req)
            assert started.wait(10)
            follower_fut = broker.submit(req)
            assert broker.coalesced == 1
            release.set()
            leader = leader_fut.result(10)
            follower = follower_fut.result(10)
            assert not leader.coalesced and not leader.cached
            assert follower.coalesced
            assert not follower.cached and not follower.warm
            assert follower.solution is leader.solution  # still one solve
            assert follower.latency_seconds > 0
            # the follower is a first-class request in the metrics:
            assert broker.metrics.endpoint("solve").count == 2
            assert broker.metrics.endpoint("solve.coalesced").count == 1
            assert broker.metrics.snapshot()["total_requests"] == 2
            # ... but only ONE cold solve happened
            assert broker.metrics.endpoint("solve.cold").count == 1

    def test_follower_error_still_observed(self, monkeypatch):
        started = threading.Event()
        release = threading.Event()

        def boom(request):
            started.set()
            assert release.wait(10)
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(broker_mod, "execute_request", boom)
        with Broker(workers=2, incremental=False) as broker:
            req = SolveRequest(problem="broadcast",
                               platform=generators.chain(3), source="N0")
            leader_fut = broker.submit(req)
            assert started.wait(10)
            follower_fut = broker.submit(req)
            release.set()
            with pytest.raises(RuntimeError):
                leader_fut.result(10)
            with pytest.raises(RuntimeError):
                follower_fut.result(10)
            ep = broker.metrics.endpoint("solve")
            assert ep.count == 2 and ep.errors == 2

    def test_coalesced_flag_on_the_wire(self, monkeypatch):
        started, release = self._blocking_solver(monkeypatch)
        with Broker(workers=2, incremental=False) as broker:
            req = SolveRequest(problem="broadcast",
                               platform=generators.chain(3), source="N0")
            leader = broker.submit(req)
            assert started.wait(10)
            follower = broker.submit(req)
            release.set()
            from repro.service import response_to_dict

            assert response_to_dict(leader.result(10))["coalesced"] is False
            assert response_to_dict(follower.result(10))["coalesced"] is True


# ----------------------------------------------------------------------
# invalidation generation: in-flight solves cannot reinstate stale entries
# ----------------------------------------------------------------------
class TestInvalidationGeneration:
    def test_inflight_put_refused_after_invalidation(self, monkeypatch):
        # regression: invalidate_platform racing an in-flight solve let
        # the solve's late cache.put reinstate the invalidated solution
        release = threading.Event()
        started = threading.Event()
        real = broker_mod.execute_request

        def slow(request):
            started.set()
            assert release.wait(10)
            return real(request)

        monkeypatch.setattr(broker_mod, "execute_request", slow)
        platform = generators.chain(3)
        with Broker(workers=2, incremental=False) as broker:
            req = SolveRequest(problem="broadcast", platform=platform,
                               source="N0")
            fut = broker.submit(req)
            assert started.wait(10)  # solve captured its generation
            assert broker.invalidate_platform(platform) == 0  # no entry yet
            release.set()
            result = fut.result(10)  # the caller still gets its answer
            assert result.throughput == Fraction(1)
            # ... but the pre-invalidation solution must not be cached
            assert broker.cache.peek(req.fingerprint()) is None
            assert broker.cache.stats.stale_puts == 1
            assert not broker.solve(req).cached

    def test_clear_bumps_generation_too(self):
        g = generators.star(2)
        cache = SolutionCache()
        gen = cache.generation
        cache.clear()
        assert cache.generation == gen + 1
        assert cache.put("k", "stale", g, generation=gen) is None
        assert cache.stats.stale_puts == 1
        assert cache.get("k") is None

    def test_unrelated_invalidation_is_conservative(self):
        # the generation is cache-global: invalidating platform A also
        # refuses platform B's in-flight put (a miss + re-solve later, never
        # a stale entry) — document the conservative choice
        a, b = generators.star(2), generators.chain(3)
        cache = SolutionCache()
        gen = cache.generation
        cache.invalidate_platform(a)
        assert cache.put("b-key", "fresh-but-refused", b,
                         generation=gen) is None
        assert cache.stats.stale_puts == 1

    def test_put_without_generation_is_unchecked(self):
        g = generators.star(2)
        cache = SolutionCache()
        cache.invalidate_platform(g)
        assert cache.put("k", "manual-warmup", g) is not None
        assert cache.get("k") is not None


# ----------------------------------------------------------------------
# incremental warm re-solve
# ----------------------------------------------------------------------
class TestIncrementalSolver:
    def test_weight_only_mutation_is_exact(self):
        inc = IncrementalSolver()
        g = generators.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                            link_c=[1, 1, 2, 3])
        inc.solve_master_slave(g, "M")
        for compute, comm in [("1/2", 1), (3, "1/3"), ("7/5", "5/7")]:
            mutated = g.scale(compute=compute, comm=comm)
            warm = inc.solve_master_slave(mutated, "M")
            cold = solve_master_slave(mutated, "M")
            assert warm.throughput == cold.throughput
            warm.verify()  # activities satisfy the steady-state equations
        assert inc.stats.warm_solves == 3
        assert inc.stats.full_rebuilds == 1

    def test_non_uniform_weight_mutation(self, fig1):
        inc = IncrementalSolver()
        inc.solve_master_slave(fig1, "P1")
        mutated = Platform("fig1-mutated")
        for name in fig1.nodes():
            spec = fig1.node(name)
            mutated.add_node(name,
                            spec.w * 2 if name in ("P2", "P5") else spec.w)
        for spec in fig1.edges():
            c = spec.c * Fraction(1, 3) if spec.src == "P1" else spec.c
            mutated.add_edge(spec.src, spec.dst, c)
        warm = inc.solve_master_slave(mutated, "P1")
        cold = solve_master_slave(mutated, "P1")
        assert warm.throughput == cold.throughput
        assert inc.stats.warm_solves == 1

    def test_topology_change_falls_back(self):
        inc = IncrementalSolver()
        g = generators.star(3)
        inc.solve_master_slave(g, "M")
        bigger = generators.star(4)
        warm = inc.solve_master_slave(bigger, "M")
        assert warm.throughput == solve_master_slave(bigger, "M").throughput
        assert inc.stats.full_rebuilds == 2
        assert inc.stats.warm_solves == 0

    def test_forget(self):
        inc = IncrementalSolver()
        g = generators.star(3)
        inc.solve_master_slave(g, "M")
        assert inc.has_model(g, "M")
        assert inc.forget(g) == 1
        assert not inc.has_model(g, "M")


# ----------------------------------------------------------------------
# property tests: cache correctness on random platforms (satellite)
# ----------------------------------------------------------------------
_weights = st.fractions(min_value=Fraction(1, 8), max_value=Fraction(8))


class TestCacheCorrectnessProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=4),
        master_w=_weights,
        data=st.data(),
    )
    def test_star_hit_equals_cold_solve(self, n, master_w, data):
        worker_w = [data.draw(_weights) for _ in range(n)]
        link_c = [data.draw(_weights) for _ in range(n)]
        g = generators.star(n, master_w=master_w, worker_w=worker_w,
                            link_c=link_c)
        with Broker(executor="sync") as broker:
            req = SolveRequest(problem="master-slave", platform=g, master="M")
            cold = broker.solve(req)
            hit = broker.solve(req)
            assert hit.cached
            assert hit.solution.throughput == cold.solution.throughput
            assert hit.solution.alpha == cold.solution.alpha
            assert hit.solution.s == cold.solution.s
            oracle = solve_master_slave(g, "M").throughput
            assert hit.solution.throughput == oracle

    @settings(max_examples=8, deadline=None)
    @given(depth=st.integers(min_value=2, max_value=3),
           seed=st.integers(min_value=0, max_value=1000))
    def test_tree_hit_equals_cold_solve(self, depth, seed):
        g = generators.binary_tree(depth, seed=seed)
        with Broker(executor="sync") as broker:
            req = SolveRequest(problem="master-slave", platform=g,
                               master="T0")
            cold = broker.solve(req)
            hit = broker.solve(req)
            assert hit.cached
            assert hit.solution.throughput == cold.solution.throughput
            assert hit.solution.alpha == cold.solution.alpha

    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(min_value=1, max_value=4), factor=_weights,
           data=st.data())
    def test_weight_mutation_invalidates_fingerprint(self, n, factor, data):
        worker_w = [data.draw(_weights) for _ in range(n)]
        g = generators.star(n, worker_w=worker_w)
        mutated = g.scale(compute=factor)
        fp = request_fingerprint(g, "master-slave", source="M")
        fp_mut = request_fingerprint(mutated, "master-slave", source="M")
        if factor == 1:
            assert fp == fp_mut
        else:
            assert fp != fp_mut


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_observe_and_percentiles(self):
        reg = MetricsRegistry()
        for ms in [1, 2, 3, 4, 100]:
            reg.observe("solve", ms / 1000.0)
        ep = reg.endpoint("solve")
        assert ep.count == 5
        assert ep.percentile(50) == pytest.approx(0.003)
        assert ep.percentile(99) == pytest.approx(0.1)
        assert ep.min_seconds == pytest.approx(0.001)
        snap = reg.snapshot()
        assert snap["endpoints"]["solve"]["count"] == 5
        assert snap["total_requests"] == 5

    def test_timer_counts_errors(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("boom"):
                raise RuntimeError("x")
        assert reg.endpoint("boom").errors == 1


# ----------------------------------------------------------------------
# JSON API + HTTP transport
# ----------------------------------------------------------------------
def _fig1_envelope(**extra):
    return {
        "op": "solve",
        "request": {
            "problem": "master-slave",
            "platform": platform_to_dict(generators.paper_figure1()),
            "master": "P1",
            **extra,
        },
    }


class TestApi:
    def test_solve_roundtrip(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, _fig1_envelope())
            assert out["ok"] and not out["cached"]
            assert Fraction(out["throughput"]) == Fraction(2)
            again = handle_request(broker, _fig1_envelope())
            assert again["cached"]
            assert again["fingerprint"] == out["fingerprint"]

    def test_solve_with_schedule(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker,
                                 _fig1_envelope(include_schedule=True))
            assert out["ok"] and "schedule" in out
            assert Fraction(out["schedule"]["throughput"]) == Fraction(2)

    def test_request_encode_decode_roundtrip(self):
        req = SolveRequest(
            problem="scatter",
            platform=generators.paper_figure2_multicast(),
            source="P0",
            targets=("P5", "P6"),
            options={"backend": "exact"},
        )
        from repro.service.api import request_from_dict

        back = request_from_dict(request_to_dict(req))
        assert back.fingerprint() == req.fingerprint()

    def test_error_is_a_response_not_an_exception(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "request": {
                "problem": "master-slave"}})
            assert not out["ok"] and "platform" in out["error"]
            out = handle_request(broker, {"op": "wat"})
            assert not out["ok"] and "unknown op" in out["error"]

    def test_ops(self):
        with Broker(executor="sync") as broker:
            assert handle_request(broker, {"op": "ping"})["pong"]
            handle_request(broker, _fig1_envelope())
            m = handle_request(broker, {"op": "metrics"})
            assert m["ok"] and m["metrics"]["total_requests"] >= 1
            c = handle_request(broker, {"op": "cache"})
            assert c["cache"]["size"] == 1
            inv = handle_request(broker, {
                "op": "invalidate",
                "platform": platform_to_dict(generators.paper_figure1()),
            })
            assert inv["invalidated"] == 1

    def test_batch_op(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {
                "op": "batch",
                "requests": [_fig1_envelope()["request"],
                             _fig1_envelope()["request"]],
            })
            assert out["ok"] and len(out["results"]) == 2
            assert (out["results"][0]["fingerprint"]
                    == out["results"][1]["fingerprint"])

    def test_batch_op_isolates_bad_requests(self):
        # one bad member must not discard the good members' results
        bad = {"problem": "nope",
               "platform": platform_to_dict(generators.star(2)),
               "master": "M"}
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {
                "op": "batch",
                "requests": [_fig1_envelope()["request"], bad,
                             {"problem": "missing-platform"}],
            })
            assert out["ok"] and len(out["results"]) == 3
            assert out["results"][0]["ok"]
            assert Fraction(out["results"][0]["throughput"]) == Fraction(2)
            assert not out["results"][1]["ok"]
            assert "unknown problem" in out["results"][1]["error"]
            assert not out["results"][2]["ok"]

    def test_multicast_and_broadcast_over_the_wire(self):
        # regression: payload encoding of non-SteadyStateSolution results
        # (multicast used to call a property and 422 on every request)
        fig2 = platform_to_dict(generators.paper_figure2_multicast())
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "request": {
                "problem": "multicast", "platform": fig2,
                "source": "P0", "targets": ["P5", "P6"]}})
            assert out["ok"], out
            payload = out["solution"]
            assert Fraction(payload["sum_lp"]) <= Fraction(payload["max_lp"])
            assert payload["max_lp_achievable"] is False  # section 4.3
            out = handle_request(broker, {"op": "solve", "request": {
                "problem": "broadcast",
                "platform": platform_to_dict(generators.chain(3)),
                "source": "N0"}})
            assert out["ok"], out
            assert out["solution"]["optimal"] is True

    def test_dag_request_over_the_wire(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "request": {
                "problem": "dag",
                "platform": platform_to_dict(generators.star(2)),
                "master": "M",
                "dag": {"types": {"a": "1", "b": "2"},
                        "files": [{"producer": "a", "consumer": "b",
                                   "size": "1"}]},
            }})
            assert out["ok"], out
            assert Fraction(out["throughput"]) > 0


class TestErrorStatusMapping:
    """Client errors (400/422) vs server bugs (500), with "type" preserved."""

    def test_invalid_spec_is_422(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "request": {
                "problem": "nope",
                "platform": platform_to_dict(generators.star(2)),
                "master": "M"}})
            assert not out["ok"]
            assert out["status"] == 422 and out["type"] == "SpecError"

    def test_undecodable_platform_is_400(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "solve", "request": {
                "problem": "master-slave", "platform": {"nodes": 12},
                "master": "M"}})
            assert not out["ok"] and out["status"] == 400
            assert out["type"] == "PlatformError"
            out = handle_request(broker, {
                "op": "invalidate", "platform": {"nodes": 12}})
            assert not out["ok"] and out["status"] == 400
            # the failure is recorded as an ERROR observation, not a
            # clean request, so operators see the endpoint failing
            assert broker.metrics.endpoint("invalidate").errors == 1

    def test_unknown_op_is_422(self):
        with Broker(executor="sync") as broker:
            out = handle_request(broker, {"op": "wat"})
            assert out["status"] == 422 and out["type"] == "SpecError"

    def test_solver_crash_is_500_with_type(self, monkeypatch):
        # regression: every failure used to surface as 422, so clients
        # could not tell "fix your request" from "server bug"
        def boom(request):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(broker_mod, "execute_request", boom)
        with Broker(executor="sync", incremental=False) as broker:
            out = handle_request(broker, _fig1_envelope())
            assert not out["ok"]
            assert out["status"] == 500
            assert out["type"] == "RuntimeError"
            assert "solver exploded" in out["error"]

    def test_batch_isolates_statuses(self, monkeypatch):
        bad_spec = {"problem": "nope",
                    "platform": platform_to_dict(generators.star(2)),
                    "master": "M"}
        with Broker(executor="sync", incremental=False) as broker:
            out = handle_request(broker, {"op": "batch", "requests": [
                _fig1_envelope()["request"], bad_spec]})
            assert out["ok"]  # the envelope succeeded; members differ
            assert out["results"][0]["ok"]
            assert out["results"][1]["status"] == 422

    def test_http_transport_maps_statuses(self, monkeypatch):
        def boom(request):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(broker_mod, "execute_request", boom)
        broker = Broker(workers=2, incremental=False)
        server = ServiceServer(("127.0.0.1", 0), broker=broker)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.port}/api"

        def post(payload: bytes) -> int:
            req = urllib.request.Request(
                url, data=payload,
                headers={"Content-Type": "application/json"})
            try:
                with urllib.request.urlopen(req, timeout=30) as resp:
                    return resp.status
            except urllib.error.HTTPError as exc:
                body = json.loads(exc.read())
                assert body["status"] == exc.code  # body mirrors transport
                return exc.code

        try:
            assert post(b"{not json") == 400
            bad_spec = {"op": "solve", "request": {
                "problem": "nope",
                "platform": platform_to_dict(generators.star(2)),
                "master": "M"}}
            assert post(json.dumps(bad_spec).encode()) == 422
            assert post(json.dumps(_fig1_envelope()).encode()) == 500
        finally:
            server.shutdown()
            broker.close()


class TestHttpServer:
    def test_end_to_end(self):
        broker = Broker(workers=2)
        server = ServiceServer(("127.0.0.1", 0), broker=broker)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        url = f"http://127.0.0.1:{server.port}"
        try:
            with urllib.request.urlopen(url + "/healthz", timeout=10) as resp:
                assert json.loads(resp.read())["ok"]
            body = json.dumps(_fig1_envelope()).encode()
            req = urllib.request.Request(
                url + "/api", data=body,
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=30) as resp:
                out = json.loads(resp.read())
            assert out["ok"] and Fraction(out["throughput"]) == Fraction(2)
            with urllib.request.urlopen(url + "/metrics", timeout=10) as resp:
                metrics = json.loads(resp.read())
            assert metrics["metrics"]["total_requests"] >= 1
        finally:
            server.shutdown()
            broker.close()


class TestStdioServer:
    def test_json_lines_loop(self):
        import io

        from repro.service.api import serve_stdio

        lines = [
            json.dumps({"op": "ping"}),
            json.dumps(_fig1_envelope()),
            json.dumps({"op": "shutdown"}),
        ]
        stdout = io.StringIO()
        with Broker(executor="sync") as broker:
            rc = serve_stdio(broker, io.StringIO("\n".join(lines) + "\n"),
                             stdout)
        assert rc == 0
        replies = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert replies[0]["pong"]
        assert replies[1]["ok"] and Fraction(replies[1]["throughput"]) == 2
        assert replies[2]["bye"]


class TestSubmitCli:
    def test_local_submit(self, capsys):
        from repro.cli import main

        rc = main(["submit", "--problem", "master-slave", "--generator",
                   "paper_figure1", "--master", "P1"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["ok"] and Fraction(out["throughput"]) == Fraction(2)

    def test_submit_request_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "req.json"
        path.write_text(json.dumps(_fig1_envelope()["request"]))
        rc = main(["submit", "--request", str(path)])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["ok"]
