# repro-lint: scope(exactness)
"""Factorisation-shaped exact code: Fraction elimination passes the rule."""

from fractions import Fraction


def eliminate(colmap, pivot_row, pivot_col):
    """One exact Gaussian elimination step over sparse Fraction columns."""
    piv = colmap[pivot_col][pivot_row]
    for col, entries in enumerate(colmap):
        if col == pivot_col:
            continue
        val = entries.get(pivot_row)
        if val is None:
            continue
        mult = val / piv
        for row, v in list(entries.items()):
            if row == pivot_row:
                del entries[row]
            else:
                entries[row] = v - mult * v
    return Fraction(piv)


def markowitz_cost(row_nnz: int, col_nnz: int) -> int:
    return (row_nnz - 1) * (col_nnz - 1)
