"""Seeded lock-discipline violations: unlocked reads and writes."""

import threading


class Racy:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock

    def bump(self) -> None:
        self.count += 1  # write outside the lock

    def peek(self) -> int:
        return self.count  # read outside the lock

    def deferred(self):
        # the lock is NOT held when the closure later runs
        with self._lock:
            return lambda: self.count + 1
