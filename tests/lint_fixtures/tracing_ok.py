# repro-lint: scope(tracing)
"""Context-managed spans and monotonic clocks: passes the rule."""

import time

from repro.service.tracing import span, start_trace


def traced_work():
    with start_trace("fixture.work") as trace:
        with span("fixture.step"):
            t0 = time.perf_counter()
            elapsed = time.perf_counter() - t0
        return trace, elapsed
