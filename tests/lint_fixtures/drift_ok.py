# repro-lint: scope(drift)
"""A mini solution codec whose encoder and decoder agree: passes."""


class Widget:
    def __init__(self, a, b):
        self.a = a
        self.b = b


def solution_to_wire(solution):
    if isinstance(solution, Widget):
        return {"kind": "widget", "a": solution.a, "b": solution.b}
    raise ValueError("unknown solution")


def solution_from_wire(data):
    kind = data.get("kind")
    if kind == "widget":
        return Widget(a=data["a"], b=data["b"])
    raise ValueError("unknown kind")
