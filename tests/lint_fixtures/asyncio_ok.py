# repro-lint: scope(asyncio)
"""Clean fixture for the ``asyncio`` rule: coroutines that keep the
event loop free, plus the sanctioned escape hatches."""

import asyncio
import time


class GoodServer:
    def __init__(self):
        self._lock = asyncio.Lock()
        self._loop = asyncio.get_event_loop()

    async def pause(self):
        await asyncio.sleep(0.1)  # the async sleep, not time.sleep

    async def relay(self, transport, message):
        # awaited transport calls are the async API — fine
        reply = await transport.request(message, timeout=1.0)
        await transport.ping(timeout=1.0)
        return reply

    async def guarded(self):
        async with self._lock:  # asyncio.Lock under async with
            return 1

    async def offloaded(self, job):
        # blocking work belongs on the executor; awaiting it is the point
        return await self._loop.run_in_executor(None, job)

    async def dispatch(self, engine_lock, handler, message):
        def job():
            # nested sync def: runs on an executor thread, so the
            # blocking lock and sleep are exempt by design
            with engine_lock:
                time.sleep(0)
                return handler(message)

        return await self._loop.run_in_executor(None, job)

    def sync_path(self, transport, message):
        # not an async def: the sync transport API is the right tool
        transport.ping(timeout=1.0)
        return transport.request(message, timeout=1.0).get("ok")

    async def sanctioned(self, fut):
        # a done future's result() cannot block; the pragma records why
        return fut.result()  # repro-lint: allow(asyncio) — done-callback hand-off

    async def deadline(self, coro):
        return await asyncio.wait_for(coro, timeout=2.0)
