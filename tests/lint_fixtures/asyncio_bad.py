# repro-lint: scope(asyncio)
"""Violation fixture for the ``asyncio`` rule: every way to block the
event loop from inside an ``async def``."""

import socket
import threading
import time


class BadServer:
    def __init__(self):
        self._engine_lock = threading.Lock()

    async def nap(self):
        time.sleep(0.5)  # blocking sleep on the loop

    async def dial(self, host, port):
        sock = socket.create_connection((host, port))  # blocking connect
        return sock.recv(4)  # blocking socket read

    async def relay(self, transport, message):
        transport.ping(timeout=1.0)  # sync transport call, not awaited
        return transport.request(message, timeout=1.0)

    async def wait(self, fut):
        return fut.result()  # parks the loop until the future resolves

    async def convoy(self, engine, message):
        with self._engine_lock:  # sync lock acquire on the loop
            return engine.handle(message)
