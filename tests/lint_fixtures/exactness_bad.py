# repro-lint: scope(exactness)
"""Seeded exactness violations: float literal, float(), math.*, 1e-."""

import math


def leaky(x):
    half = 0.5  # float literal
    coerced = float(x)  # float() coercion
    root = math.sqrt(x)  # math.* float math
    eps = 1e-9  # scientific-notation float literal
    return half * coerced + root + eps
