# repro-lint: scope(drift)
"""Seeded wire drift: decoder drops a key, one kind has no decoder."""


class Widget:
    def __init__(self, a, b=None):
        self.a = a
        self.b = b


class Gadget:
    def __init__(self, x):
        self.x = x


def solution_to_wire(solution):
    if isinstance(solution, Widget):
        # encodes a AND b ...
        return {"kind": "widget", "a": solution.a, "b": solution.b}
    if isinstance(solution, Gadget):
        # a kind with no decoder branch at all
        return {"kind": "gadget", "x": solution.x}
    raise ValueError("unknown solution")


def solution_from_wire(data):
    kind = data.get("kind")
    if kind == "widget":
        # ... but the decoder silently drops b
        return Widget(a=data["a"])
    raise ValueError("unknown kind")
