"""Caller-holds discipline violated three ways: fails the ``locks`` rule.

1. a caller-holds helper invoked without the lock held;
2. a helper touching guarded state with NO caller-holds annotation;
3. a dangling caller-holds annotation not on a ``def`` header.
"""

import threading

# caller-holds: _lock
WHERE_IS_THE_DEF = True


class RacySketch:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {}  # guarded-by: _lock
        self._heap = []  # guarded-by: _lock

    def record(self, key: str) -> int:
        with self._lock:
            count = self._counts.get(key, 0) + 1
            self._counts[key] = count
            return count

    def drop_coldest(self) -> None:
        # BAD: the helper demands the lock, nobody holds it here
        self._evict_min()

    def _evict_min(self) -> None:  # caller-holds: _lock
        if self._heap:
            _, key = self._heap.pop(0)
            del self._counts[key]

    def _compact(self) -> None:
        # BAD: guarded state, no lock, no caller-holds declaration
        self._heap = sorted(
            (count, key) for key, count in self._counts.items()
        )
