"""Guarded attributes touched only under their lock: passes the rule."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0  # guarded-by: _lock
        self.events = []  # guarded-by: _lock

    def bump(self) -> int:
        with self._lock:
            self.count += 1
            self.events.append("bump")
            return self.count

    def snapshot(self) -> dict:
        with self._lock:
            return {"count": self.count, "events": list(self.events)}


class SubCounter(Counter):
    """Inherited guards are enforced (and honoured) in subclasses."""

    def double_bump(self) -> int:
        with self._lock:
            self.count += 2
            return self.count
