# repro-lint: scope(tracing)
"""Seeded tracing violations: naked span call, wall clock in a trace."""

import time

from repro.service.tracing import span, start_trace


def leaky_trace():
    trace = start_trace("fixture.work")  # not context-managed
    handle = span("fixture.step")  # not context-managed
    stamp = time.time()  # wall clock in a traced path
    return trace, handle, stamp
