"""Caller-holds helpers used correctly: passes the ``locks`` rule.

Models the heat-sketch shape: a lock-holding public method factors its
eviction into a private helper annotated ``# caller-holds: _lock``.  The
helper may touch guarded state freely, and every call site holds the
lock.
"""

import threading


class Sketch:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {}  # guarded-by: _lock
        self._heap = []  # guarded-by: _lock

    def record(self, key: str) -> int:
        with self._lock:
            count = self._counts.get(key, 0) + 1
            self._counts[key] = count
            self._heap.append((count, key))
            if len(self._heap) > 64:
                self._compact()
            return count

    def _compact(self) -> None:  # caller-holds: _lock
        self._heap = sorted(
            (count, key) for key, count in self._counts.items()
        )

    def drop_coldest(self) -> None:
        with self._lock:
            self._evict_min()

    def _evict_min(self) -> None:  # caller-holds: _lock
        # a caller-holds helper may call another under the same lock
        self._compact()
        if self._heap:
            _, key = self._heap.pop(0)
            del self._counts[key]
