# repro-lint: scope(exactness)
"""Exact arithmetic only: Fractions and integers pass the rule."""

from fractions import Fraction


def harmonic(n: int) -> Fraction:
    total = Fraction(0)
    for k in range(1, n + 1):
        total += Fraction(1, k)
    return total


def scaled(x: Fraction) -> Fraction:
    return x * Fraction(3, 2) + 7
