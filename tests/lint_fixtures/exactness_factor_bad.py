# repro-lint: scope(exactness)
"""Seeded factorisation anti-patterns: float pivot tolerances and
float-coerced fill estimates have no place in an exact LU."""

import math


def select_pivot(colmap, rowmap):
    best = None
    for j, col in enumerate(colmap):
        for i, v in col.items():
            if abs(float(v)) < 1e-12:  # float() + tolerance literal
                continue
            cost = math.log(len(rowmap[i]))  # math.* on exact data
            if best is None or cost < best[0]:
                best = (cost, i, j)
    return best


def fill_ratio(lu_nnz, basis_nnz):
    return lu_nnz / (basis_nnz + 0.0)  # float coercion by arithmetic
