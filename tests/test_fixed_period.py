"""Fixed-period schedule tests (section 5.4)."""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.schedule.fixed_period import (
    fixed_period_schedule,
    rounding_loss_bound,
    throughput_vs_period,
)
from repro.schedule.periodic import ScheduleError
from repro.simulator.periodic_runner import PeriodicRunner


class TestFixedPeriod:
    def test_schedule_is_feasible(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sched = fixed_period_schedule(sol, 7)
        sched.validate()
        sched.check_message_counts()
        assert sched.period == 7

    def test_throughput_never_exceeds_lp(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        for tau in (3, 10, 50):
            sched = fixed_period_schedule(sol, tau)
            assert sched.throughput <= sol.throughput

    def test_loss_bounded_by_route_count(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        for tau in (5, 25, 125):
            sched = fixed_period_schedule(sol, tau)
            loss = sol.throughput - sched.throughput
            assert loss <= rounding_loss_bound(sol, tau)

    def test_converges_to_optimum(self, star4):
        """§5.4: throughput tends to the optimum as tau grows."""
        sol = solve_master_slave(star4, "M")
        series = throughput_vs_period(sol, [2, 8, 32, 128, 512])
        gaps = [float(sol.throughput - tp) for _, tp in series]
        assert gaps[-1] <= gaps[0]
        assert gaps[-1] < 0.02

    def test_tiny_period_may_do_nothing(self, star4):
        sol = solve_master_slave(star4, "M")
        sched = fixed_period_schedule(sol, Fraction(1, 100))
        assert sched.throughput == 0  # nothing fits: floors to zero

    def test_runs_in_simulator(self, star4):
        sol = solve_master_slave(star4, "M")
        sched = fixed_period_schedule(sol, 11)
        res = PeriodicRunner(sched).run(20)
        long = PeriodicRunner(sched).run(40)
        assert res.deficit == long.deficit  # still a constant

    def test_invalid_tau(self, star4):
        sol = solve_master_slave(star4, "M")
        with pytest.raises(ScheduleError):
            fixed_period_schedule(sol, 0)

    def test_only_master_slave_supported(self, fig2):
        from repro.core.scatter import solve_scatter

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        with pytest.raises(ScheduleError):
            fixed_period_schedule(sol, 5)
