"""Start-up cost tests (section 5.2): grouping, phases, asymptotics."""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.schedule.reconstruction import reconstruct_schedule
from repro.schedule.startup import (
    asymptotic_ratio_bound,
    default_group_count,
    grouped_schedule_makespan,
)


@pytest.fixture(scope="module")
def star_schedule():
    g = gen.star(3, master_w=2, worker_w=[1, 2, 4], link_c=[1, 2, 3])
    sol = solve_master_slave(g, "M")
    return reconstruct_schedule(sol)


def unit_startups(schedule, value=1):
    return {e: Fraction(value) for e in schedule.messages}


class TestGroupCount:
    def test_paper_formula(self):
        # m = ceil(sqrt(n / ntask))
        assert default_group_count(100, Fraction(1)) == 10
        assert default_group_count(1000, Fraction(4)) >= 15

    def test_minimum_one(self):
        assert default_group_count(0, Fraction(1)) == 1
        assert default_group_count(1, Fraction(100)) == 1


class TestGroupedMakespan:
    def test_structure(self, star_schedule):
        analysis = grouped_schedule_makespan(
            star_schedule, unit_startups(star_schedule), 500
        )
        assert analysis.total_time >= analysis.lower_bound
        assert analysis.tasks_per_group == (
            analysis.m * star_schedule.period * star_schedule.throughput
        )
        assert analysis.group_length > analysis.m * star_schedule.period

    def test_ratio_decreases_with_n(self, star_schedule):
        startups = unit_startups(star_schedule)
        ratios = [
            grouped_schedule_makespan(star_schedule, startups, n).ratio
            for n in (100, 1000, 10000, 100000)
        ]
        assert all(r >= 1 for r in ratios)
        assert ratios == sorted(ratios, reverse=True)
        assert float(ratios[-1]) < 1.05

    def test_sqrt_convergence_bound(self, star_schedule):
        """ratio - 1 <= C / sqrt(n) with one platform constant C."""
        import math

        startups = unit_startups(star_schedule)
        cs = []
        for n in (400, 3600, 40000, 360000):
            ratio = grouped_schedule_makespan(
                star_schedule, startups, n
            ).ratio
            cs.append((float(ratio) - 1) * math.sqrt(n))
        # the implied constant stays bounded (within 3x of its smallest)
        assert max(cs) <= 3 * max(min(cs), 1e-9) + 50

    def test_closed_form_bound_dominates(self, star_schedule):
        """The paper's closed-form bound must upper-bound the ratio
        whenever the default m is used."""
        startups = unit_startups(star_schedule)
        for n in (1000, 10000, 100000):
            measured = grouped_schedule_makespan(
                star_schedule, startups, n
            ).ratio
            bound = asymptotic_ratio_bound(star_schedule, startups, n)
            assert float(measured) <= float(bound) + 0.02

    def test_zero_startups_recover_plain_schedule(self, star_schedule):
        analysis = grouped_schedule_makespan(
            star_schedule, {}, 10000, m=1
        )
        # still pays init/cleanup phases, but no per-group overhead
        assert analysis.group_length == star_schedule.period

    def test_explicit_m(self, star_schedule):
        a1 = grouped_schedule_makespan(
            star_schedule, unit_startups(star_schedule), 10000, m=1
        )
        a_default = grouped_schedule_makespan(
            star_schedule, unit_startups(star_schedule), 10000
        )
        # the paper's sqrt choice beats no grouping
        assert a_default.total_time < a1.total_time

    def test_bigger_startups_bigger_makespan(self, star_schedule):
        small = grouped_schedule_makespan(
            star_schedule, unit_startups(star_schedule, 1), 5000
        )
        large = grouped_schedule_makespan(
            star_schedule, unit_startups(star_schedule, 50), 5000
        )
        assert large.total_time > small.total_time

    def test_validation(self, star_schedule):
        with pytest.raises(ValueError):
            grouped_schedule_makespan(star_schedule, {}, -1)
        with pytest.raises(ValueError):
            grouped_schedule_makespan(star_schedule, {}, 10, m=0)
