"""Integer-granularity executor tests."""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.event_executor import EventExecutor, _edge_message_intervals
from repro.simulator.periodic_runner import PeriodicRunner


def schedule_for(platform, master):
    return reconstruct_schedule(solve_master_slave(platform, master))


class TestMessageCarving:
    def test_counts_match(self, any_platform):
        name, platform, master = any_platform
        sched = schedule_for(platform, master)
        carved = _edge_message_intervals(sched)
        for e, intervals in carved.items():
            assert len(intervals) == sched.messages[e]

    def test_each_message_takes_exactly_c(self, star4):
        sched = schedule_for(star4, "M")
        carved = _edge_message_intervals(sched)
        for (i, j), intervals in carved.items():
            c = star4.c(i, j)
            for (a, b) in intervals:
                # contiguous within one slice here: duration == c
                assert b - a == c

    def test_messages_within_period(self, grid33):
        sched = schedule_for(grid33, "G0_0")
        for intervals in _edge_message_intervals(sched).values():
            for (a, b) in intervals:
                assert 0 <= a < b <= sched.period


class TestEventExecution:
    def test_steady_state_integral(self, any_platform):
        name, platform, master = any_platform
        sched = schedule_for(platform, master)
        res = EventExecutor(sched).run(platform.num_nodes + 6)
        target = sched.tasks_per_period()
        # the last period processes exactly T * ntask WHOLE tasks
        assert res.completed_per_period[-1] == target

    def test_trace_one_port(self, any_platform):
        name, platform, master = any_platform
        sched = schedule_for(platform, master)
        res = EventExecutor(sched).run(5)
        res.trace.validate("one-port")
        res.trace.check_matched_transfers()

    def test_agrees_with_fluid_runner(self, star4):
        """Fluid and integral executions complete the same totals (the
        fluid plan is integral per period by construction)."""
        sched = schedule_for(star4, "M")
        fluid = PeriodicRunner(sched).run(12)
        event = EventExecutor(sched).run(12)
        assert Fraction(event.total_completed) == fluid.total_completed

    def test_integer_counts(self, grid33):
        sched = schedule_for(grid33, "G0_0")
        res = EventExecutor(sched).run(8)
        assert all(isinstance(v, int) for v in res.completed.values())
        assert all(isinstance(v, int) for v in res.completed_per_period)

    def test_priming_starves_early_slots(self):
        """In period 0 only the master's messages depart."""
        g = gen.chain(3, node_w=1, link_c=1)
        sched = schedule_for(g, "N0")
        res = EventExecutor(sched).run(4)
        first_period = [m for m in res.messages if m.period == 0]
        assert all(m.src == "N0" for m in first_period)

    def test_deficit_constant(self, star4):
        sched = schedule_for(star4, "M")
        target = sched.tasks_per_period()
        short = EventExecutor(sched).run(8)
        long = EventExecutor(sched).run(30)
        deficit_short = 8 * target - short.total_completed
        deficit_long = 30 * target - long.total_completed
        assert deficit_short == deficit_long

    def test_rejects_scatter(self, fig2):
        from repro.core.scatter import solve_scatter
        from repro.schedule.periodic import ScheduleError

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sched = reconstruct_schedule(sol)
        with pytest.raises(ScheduleError):
            EventExecutor(sched)

    def test_negative_periods(self, star4):
        sched = schedule_for(star4, "M")
        with pytest.raises(ValueError):
            EventExecutor(sched).run(-1)
