"""Scatter under alternative port models + all-to-all reconstruction."""

from fractions import Fraction

import pytest

from repro.core.scatter import (
    solve_all_to_all_solution,
    solve_scatter,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError
from repro.schedule.reconstruction import reconstruct_schedule


class TestScatterPortModels:
    def test_model_ordering(self, fig2):
        targets = ["P5", "P6"]
        sor = solve_scatter(fig2, "P0", targets,
                            port_model="send-or-receive").throughput
        one = solve_scatter(fig2, "P0", targets).throughput
        mp2 = solve_scatter(fig2, "P0", targets,
                            port_model="multiport", ports=2).throughput
        assert sor <= one <= mp2

    def test_multiport_star_scales(self):
        g = gen.star(3, worker_w=[1, 1, 1], link_c=[1, 1, 1])
        one = solve_scatter(g, "M", ["W1", "W2", "W3"]).throughput
        mp3 = solve_scatter(g, "M", ["W1", "W2", "W3"],
                            port_model="multiport", ports=3).throughput
        assert one == Fraction(1, 3)
        assert mp3 == 1  # three cards saturate every unit link at once

    def test_sor_hurts_relayed_scatter(self):
        g = gen.chain(3, link_c=1)
        one = solve_scatter(g, "N0", ["N1", "N2"]).throughput
        sor = solve_scatter(g, "N0", ["N1", "N2"],
                            port_model="send-or-receive").throughput
        # N1 must receive both commodities and forward one: merged budget
        assert sor < one

    def test_unknown_model_rejected(self, fig2):
        with pytest.raises(PlatformError):
            solve_scatter(fig2, "P0", ["P5"], port_model="psychic")

    def test_bad_port_count(self, fig2):
        with pytest.raises(PlatformError):
            solve_scatter(fig2, "P0", ["P5"], port_model="multiport",
                          ports=0)


class TestAllToAllReconstruction:
    def triangle(self):
        p = Platform("tri")
        for n in "ABC":
            p.add_node(n, 1)
        for a, b in [("A", "B"), ("B", "C"), ("C", "A"),
                     ("B", "A"), ("C", "B"), ("A", "C")]:
            p.add_edge(a, b, 1)
        return p

    def test_solution_verifies(self):
        sol = solve_all_to_all_solution(self.triangle())
        assert sol.throughput == Fraction(1, 2)
        sol.verify()

    def test_reconstruction_routes_every_pair(self):
        p = self.triangle()
        sol = solve_all_to_all_solution(p)
        sched = reconstruct_schedule(sol)
        per_period = sol.throughput * sched.period
        pairs = {(a, b) for a in "ABC" for b in "ABC" if a != b}
        assert set(sched.routes) == {f"{a}->{b}" for a, b in pairs}
        for k, routes in sched.routes.items():
            a, b = k.split("->")
            delivered = sum((r for _, r in routes), start=Fraction(0))
            assert delivered == per_period
            for path, _units in routes:
                assert path[0] == a and path[-1] == b

    def test_grid_all_to_all(self):
        g = gen.grid2d(2, 2, seed=4)
        sol = solve_all_to_all_solution(g)
        sched = reconstruct_schedule(sol)
        assert sched.throughput == sol.throughput
        assert len(sched.slices) <= g.num_edges + 2 * g.num_nodes
