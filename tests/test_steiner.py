"""Tests for the polynomial multicast-tree heuristics."""

from fractions import Fraction

import pytest

from repro.core.multicast import solve_multicast
from repro.core.steiner import (
    candidate_trees,
    cheapest_insertion_tree,
    heuristic_multicast_packing,
    shortest_path_tree,
)
from repro.core.trees import tree_recv_time, tree_throughput
from repro.platform import generators as gen
from repro.platform.graph import Platform


class TestShortestPathTree:
    def test_chain(self):
        g = gen.chain(3, link_c=1)
        tree = shortest_path_tree(g, "N0", ["N2"])
        assert tree == frozenset({("N0", "N1"), ("N1", "N2")})

    def test_fig2(self, fig2):
        tree = shortest_path_tree(fig2, "P0", ["P5", "P6"])
        assert tree is not None
        heads = {v for _, v in tree}
        assert {"P5", "P6"} <= heads
        tree_recv_time(fig2, tree)  # is an arborescence

    def test_unreachable_target(self):
        g = Platform("gap")
        g.add_node("A", 1)
        g.add_node("B", 1)
        assert shortest_path_tree(g, "A", ["B"]) is None

    def test_prunes_non_terminals(self, fig2):
        tree = shortest_path_tree(fig2, "P0", ["P5"])
        heads = {v for _, v in tree}
        assert heads == {"P1", "P5"} or heads == {"P5"} or "P5" in heads
        # no leaf that is not a terminal
        out_deg = {}
        for (u, v) in tree:
            out_deg[u] = out_deg.get(u, 0) + 1
        for (u, v) in tree:
            if out_deg.get(v, 0) == 0:
                assert v == "P5"


class TestInsertionTree:
    def test_matches_spt_on_chain(self):
        g = gen.chain(4, link_c=1)
        t1 = cheapest_insertion_tree(g, "N0", ["N3"])
        t2 = shortest_path_tree(g, "N0", ["N3"])
        assert t1 == t2

    def test_insertion_can_share_relays(self):
        """Insertion reuses the partial tree; SPT pays both full paths."""
        g = Platform("share")
        for n in ("S", "R", "A", "B"):
            g.add_node(n, 1)
        g.add_edge("S", "R", 5)
        g.add_edge("R", "A", 1)
        g.add_edge("R", "B", 1)
        tree = cheapest_insertion_tree(g, "S", ["A", "B"])
        assert tree == frozenset({("S", "R"), ("R", "A"), ("R", "B")})

    def test_explicit_order(self, fig2):
        t_ab = cheapest_insertion_tree(fig2, "P0", ["P5", "P6"],
                                       order=["P5", "P6"])
        t_ba = cheapest_insertion_tree(fig2, "P0", ["P5", "P6"],
                                       order=["P6", "P5"])
        assert t_ab is not None and t_ba is not None

    def test_unreachable(self):
        g = Platform("gap")
        g.add_node("A", 1)
        g.add_node("B", 1)
        assert cheapest_insertion_tree(g, "A", ["B"]) is None


class TestHeuristicPacking:
    def test_pool_is_nonempty_and_valid(self, fig2):
        pool = candidate_trees(fig2, "P0", ["P5", "P6"])
        assert pool
        for tree in pool:
            heads = {v for _, v in tree}
            assert {"P5", "P6"} <= heads
            tree_recv_time(fig2, tree)

    def test_sandwiched_between_single_tree_and_optimum(self, fig2):
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        heuristic, packing = heuristic_multicast_packing(
            fig2, "P0", ["P5", "P6"]
        )
        pool = candidate_trees(fig2, "P0", ["P5", "P6"])
        best_single = max(tree_throughput(fig2, t) for t in pool)
        assert best_single <= heuristic <= analysis.tree_optimal

    def test_heuristic_hits_optimum_on_fig2(self, fig2):
        """The rotation pool contains the a/b trees, so the packing
        reaches the true 3/4 optimum polynomially on this instance."""
        heuristic, _ = heuristic_multicast_packing(fig2, "P0", ["P5", "P6"])
        assert heuristic == Fraction(3, 4)

    def test_scales_to_platforms_beyond_enumeration(self):
        """Runs on a platform where exhaustive enumeration would blow up."""
        g = gen.grid2d(4, 4, seed=2)
        targets = ["G3_3", "G0_3", "G3_0"]
        heuristic, packing = heuristic_multicast_packing(g, "G0_0", targets)
        assert heuristic > 0
        assert len(packing) >= 1

    def test_empty_pool_when_unreachable(self):
        g = Platform("gap")
        g.add_node("A", 1)
        g.add_node("B", 1)
        tp, packing = heuristic_multicast_packing(g, "A", ["B"])
        assert tp == 0 and packing == {}
