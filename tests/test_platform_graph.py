"""Tests for the platform model of section 2."""

from fractions import Fraction

import pytest

from repro._rational import INF
from repro.platform.graph import Platform, PlatformError
from repro.platform import generators as gen


def small_platform():
    g = Platform("t")
    g.add_node("A", 1)
    g.add_node("B", 2)
    g.add_node("C", INF)
    g.add_edge("A", "B", "1/2")
    g.add_edge("B", "C", 3)
    g.add_edge("A", "C", 1)
    return g


class TestConstruction:
    def test_counts(self):
        g = small_platform()
        assert g.num_nodes == 3
        assert g.num_edges == 3

    def test_duplicate_node(self):
        g = Platform()
        g.add_node("A", 1)
        with pytest.raises(PlatformError):
            g.add_node("A", 2)

    def test_zero_weight_rejected(self):
        """w_i = 0 would permit infinitely many computations (section 2)."""
        g = Platform()
        with pytest.raises(PlatformError):
            g.add_node("A", 0)

    def test_negative_weight_rejected(self):
        g = Platform()
        with pytest.raises(PlatformError):
            g.add_node("A", -1)

    def test_infinite_weight_is_forwarder(self):
        g = Platform()
        spec = g.add_node("A", INF)
        assert not spec.can_compute
        assert spec.speed == 0

    def test_edge_to_unknown_node(self):
        g = Platform()
        g.add_node("A", 1)
        with pytest.raises(PlatformError):
            g.add_edge("A", "B", 1)

    def test_self_loop_rejected(self):
        g = Platform()
        g.add_node("A", 1)
        with pytest.raises(PlatformError):
            g.add_edge("A", "A", 1)

    def test_duplicate_edge_rejected(self):
        g = small_platform()
        with pytest.raises(PlatformError):
            g.add_edge("A", "B", 1)

    def test_zero_cost_edge_rejected(self):
        g = Platform()
        g.add_node("A", 1)
        g.add_node("B", 1)
        with pytest.raises(PlatformError):
            g.add_edge("A", "B", 0)

    def test_infinite_cost_edge_rejected(self):
        """An infinite cost means 'no link': omit the edge instead."""
        g = Platform()
        g.add_node("A", 1)
        g.add_node("B", 1)
        with pytest.raises(PlatformError):
            g.add_edge("A", "B", INF)

    def test_bidirectional_adds_two_edges(self):
        g = Platform()
        g.add_node("A", 1)
        g.add_node("B", 1)
        g.add_bidirectional_edge("A", "B", 2, c_back=3)
        assert g.c("A", "B") == 2
        assert g.c("B", "A") == 3

    def test_weights_are_exact(self):
        g = small_platform()
        assert g.c("A", "B") == Fraction(1, 2)
        assert isinstance(g.w("A"), Fraction)


class TestQueries:
    def test_successors_order(self):
        g = small_platform()
        assert g.successors("A") == ["B", "C"]

    def test_predecessors(self):
        g = small_platform()
        assert g.predecessors("C") == ["B", "A"]

    def test_unknown_node_raises(self):
        g = small_platform()
        with pytest.raises(PlatformError):
            g.node("Z")
        with pytest.raises(PlatformError):
            g.successors("Z")

    def test_missing_edge_raises(self):
        g = small_platform()
        with pytest.raises(PlatformError):
            g.edge("C", "A")

    def test_compute_nodes_excludes_forwarders(self):
        g = small_platform()
        assert g.compute_nodes() == ["A", "B"]

    def test_contains_and_iter(self):
        g = small_platform()
        assert "A" in g
        assert sorted(g) == ["A", "B", "C"]

    def test_bandwidth(self):
        g = small_platform()
        assert g.edge("A", "B").bandwidth == 2


class TestAlgorithms:
    def test_reachable(self):
        g = small_platform()
        assert g.reachable_from("A") == {"A", "B", "C"}
        assert g.reachable_from("C") == {"C"}

    def test_connected(self):
        g = small_platform()
        assert g.is_connected_from("A")
        assert not g.is_connected_from("B")

    def test_depth(self):
        g = small_platform()
        assert g.depth_from("A") == 1
        chain = gen.chain(5)
        assert chain.depth_from("N0") == 4

    def test_shortest_path(self):
        g = small_platform()
        # A->C direct costs 1; A->B->C costs 1/2 + 3
        assert g.shortest_path("A", "C") == ["A", "C"]
        assert g.shortest_path("C", "A") is None

    def test_simple_paths(self):
        g = small_platform()
        paths = g.simple_paths("A", "C")
        assert sorted(paths) == [["A", "B", "C"], ["A", "C"]]

    def test_min_cut_single_edge(self):
        g = Platform()
        g.add_node("A", 1)
        g.add_node("B", 1)
        g.add_edge("A", "B", 2)
        assert g.min_cut_value("A", "B") == Fraction(1, 2)

    def test_min_cut_parallel_paths(self):
        g = Platform()
        for n in "SABT":
            g.add_node(n, 1)
        g.add_edge("S", "A", 1)
        g.add_edge("A", "T", 1)
        g.add_edge("S", "B", 2)
        g.add_edge("B", "T", 2)
        # path capacities 1 and 1/2
        assert g.min_cut_value("S", "T") == Fraction(3, 2)

    def test_copy_independent(self):
        g = small_platform()
        h = g.copy()
        h.add_node("D", 1)
        assert not g.has_node("D")

    def test_scale(self):
        g = small_platform()
        h = g.scale(compute=2, comm=Fraction(1, 2))
        assert h.w("A") == 2
        assert h.c("A", "B") == Fraction(1, 4)
        assert not h.node("C").can_compute

    def test_scale_validates(self):
        g = small_platform()
        with pytest.raises(PlatformError):
            g.scale(compute=0)

    def test_to_networkx(self):
        nx_g = small_platform().to_networkx()
        assert nx_g.number_of_nodes() == 3
        assert nx_g.number_of_edges() == 3

    def test_describe_mentions_forwarder(self):
        text = small_platform().describe()
        assert "forwarder" in text
