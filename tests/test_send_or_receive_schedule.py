"""Tests for the send-or-receive reconstruction (§5.1.1)."""

from fractions import Fraction

import pytest

from repro._rational import INF
from repro.core.port_models import solve_master_slave_send_or_receive
from repro.platform import generators as gen
from repro.platform.graph import Platform
from repro.schedule.send_or_receive import (
    reconstruct_send_or_receive_schedule,
    schedule_to_trace,
)


def relay_chain():
    g = Platform("relay-chain")
    g.add_node("N0", 1)
    g.add_node("N1", INF)
    g.add_node("N2", 1)
    g.add_edge("N0", "N1", 1)
    g.add_edge("N1", "N2", 1)
    return g


class TestSorReconstruction:
    def test_star_no_stretch(self, star4):
        """On a star nobody both sends and receives: stretch = 1."""
        sol = solve_master_slave_send_or_receive(star4, "M")
        sched, stretch = reconstruct_send_or_receive_schedule(sol)
        assert stretch == 1
        assert sched.throughput == sol.throughput

    def test_relay_chain_schedules_serially(self):
        """The forwarder's receive and send are serialised in the slices."""
        g = relay_chain()
        sol = solve_master_slave_send_or_receive(g, "N0")
        sched, stretch = reconstruct_send_or_receive_schedule(sol)
        trace = schedule_to_trace(sched, periods=2)
        trace.validate("send-or-receive")
        assert 1 <= stretch <= 2

    def test_throughput_scales_with_stretch(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave_send_or_receive(platform, master)
        if sol.throughput == 0:
            return
        sched, stretch = reconstruct_send_or_receive_schedule(sol)
        assert sched.throughput == sol.throughput / stretch
        assert 1 <= stretch <= 2  # Shannon-type guarantee

    def test_traces_pass_sor_validation(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave_send_or_receive(platform, master)
        sched, _ = reconstruct_send_or_receive_schedule(sol)
        trace = schedule_to_trace(sched, periods=3)
        trace.validate("send-or-receive")
        trace.validate("one-port")  # sor traces are a fortiori one-port

    def test_one_port_schedule_can_violate_sor(self):
        """The contrast: a full-overlap reconstruction uses simultaneous
        send+receive at relays, which the sor validator rejects."""
        from repro.core.master_slave import solve_master_slave
        from repro.schedule.reconstruction import reconstruct_schedule
        from repro.simulator.trace import ModelViolation

        g = relay_chain()
        sol = solve_master_slave(g, "N0")
        sched = reconstruct_schedule(sol)
        trace = schedule_to_trace(sched, periods=1)
        trace.validate("one-port")
        with pytest.raises(ModelViolation):
            trace.validate("send-or-receive")

    def test_rejects_scatter_solutions(self, fig2):
        from repro.core.scatter import solve_scatter
        from repro.schedule.periodic import ScheduleError

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        with pytest.raises(ScheduleError):
            reconstruct_send_or_receive_schedule(sol)
