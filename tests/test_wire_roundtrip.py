"""Auto-generated wire round-trips for every registered problem.

The dynamic twin of the ``drift`` lint rule: for each entry in the
solver registry, the example spec is encoded/decoded through the spec
codec and its solved solution through ``repro.service.wire``, asserting
(a) exact (``Fraction``-identical) round-trips and (b) field-set
equality between each dataclass and its wire keys.  A field added to a
spec or solution dataclass without its codec counterpart fails here by
construction — no per-problem test needs writing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.platform import generators
from repro.problems import registered_problems, resolve
from repro.service import wire
from repro.service.wire import solution_from_wire, solution_to_wire

#: Solution kinds encoded by delegation to the platform serialization
#: module (field-set equality is asserted against the dataclass there).
DELEGATED_KINDS = {"steady-state"}

ALL_PROBLEMS = registered_problems()


def example_spec(problem):
    entry = resolve(problem)
    assert entry.example is not None, (
        f"{problem} registers no example factory")
    platform = generators.star(2, bidirectional=True)
    return entry, entry.example(platform, "M", ("W1", "W2"))


@pytest.mark.parametrize("problem", ALL_PROBLEMS)
def test_spec_roundtrip_and_field_sets(problem):
    entry, spec = example_spec(problem)
    payload = spec.to_wire()

    # wire keys == dataclass fields (platform travels out of band)
    field_names = {f.name for f in dataclasses.fields(spec)
                   if f.name != "platform"}
    wire_keys = set(payload) - {"version", "problem"}
    assert wire_keys == field_names, (
        f"{problem}: spec wire keys {sorted(wire_keys)} != dataclass "
        f"fields {sorted(field_names)}")

    decoded = entry.spec_type.from_wire(spec.platform, payload)
    assert type(decoded) is type(spec)
    assert decoded.to_wire() == payload  # exact, canonical
    for name in field_names:
        assert getattr(decoded, name) == getattr(spec, name)


@pytest.mark.parametrize("problem", ALL_PROBLEMS)
def test_solution_roundtrip_is_exact(problem):
    entry, spec = example_spec(problem)
    solution = entry.solve(spec)
    payload = solution_to_wire(solution)
    decoded = solution_from_wire(payload)
    assert type(decoded) is type(solution)
    # Fraction-identical: the canonical re-encoding must be equal,
    # including every "p/q" rational string
    assert solution_to_wire(decoded) == payload


@pytest.mark.parametrize("problem", ALL_PROBLEMS)
def test_solution_wire_keys_match_dataclass(problem):
    entry, spec = example_spec(problem)
    solution = entry.solve(spec)
    payload = solution_to_wire(solution)
    kind = payload["kind"]
    if kind in DELEGATED_KINDS:
        pytest.skip(f"kind {kind} delegates to solution_to_dict")
    field_names = {f.name for f in dataclasses.fields(solution)}
    wire_keys = set(payload) - {"kind"}
    # optional fields (e.g. dag affinity=None) may be omitted from the
    # wire, but a wire key with no dataclass field is always drift
    assert wire_keys <= field_names, (
        f"{problem}: wire keys with no dataclass field: "
        f"{sorted(wire_keys - field_names)}")
    missing = field_names - wire_keys
    for name in sorted(missing):
        assert getattr(solution, name) is None, (
            f"{problem}: dataclass field {name!r} never encoded")


def test_delegated_steady_state_fields_covered():
    # the steady-state branch delegates to solution_to_dict; assert the
    # delegation covers every dataclass field so drift cannot hide there
    entry, spec = example_spec("master-slave")
    solution = entry.solve(spec)
    payload = solution_to_wire(solution)
    field_names = {f.name for f in dataclasses.fields(solution)}
    wire_keys = set(payload) - {"kind"}
    missing = {name for name in field_names - wire_keys
               if getattr(solution, name) is not None}
    assert not missing, (
        f"steady-state fields never encoded: {sorted(missing)}")


def test_every_wire_branch_has_a_registered_producer():
    # each isinstance branch in solution_to_wire corresponds to at least
    # one registered problem's solution type
    produced = set()
    for problem in ALL_PROBLEMS:
        entry, spec = example_spec(problem)
        produced.add(type(entry.solve(spec)))
    for cls in (wire.SteadyStateSolution, wire.BroadcastSolution,
                wire.MulticastAnalysis, wire.DagSolution):
        assert cls in produced, (
            f"wire codec branch for {cls.__name__} has no registered "
            f"producer — dead codec branch or missing registration")
