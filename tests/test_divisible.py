"""Divisible-load tests (section 5.2 application, ref [8])."""

from fractions import Fraction

import pytest

from repro.core.divisible import (
    StarWorker,
    makespan_lower_bound,
    multi_round_makespan,
    one_round_schedule,
    steady_state_rate,
)


def workers_basic():
    return [
        StarWorker(Fraction(1), Fraction(1), Fraction(1)),
        StarWorker(Fraction(2), Fraction(1), Fraction(2)),
        StarWorker(Fraction(3), Fraction(2), Fraction(1)),
    ]


class TestOneRound:
    def test_all_workers_finish_simultaneously(self):
        W = Fraction(60)
        wk = workers_basic()
        mk, alphas = one_round_schedule(W, wk)
        assert sum(alphas, start=Fraction(0)) == W
        # recompute each worker's finish time in send order (by c)
        order = sorted(range(len(wk)), key=lambda k: (wk[k].c, k))
        clock = Fraction(0)
        finishes = []
        for k in order:
            clock += wk[k].startup + wk[k].c * alphas[k]
            finishes.append(clock + wk[k].w * alphas[k])
        assert all(f == mk for f in finishes)

    def test_makespan_above_lower_bound(self):
        W = Fraction(100)
        mk, _ = one_round_schedule(W, workers_basic())
        assert mk >= makespan_lower_bound(W, workers_basic())

    def test_master_computes_too(self):
        W = Fraction(30)
        mk_without, _ = one_round_schedule(W, workers_basic())
        mk_with, alphas = one_round_schedule(
            W, workers_basic(), master_w=Fraction(2)
        )
        assert mk_with < mk_without
        assert sum(alphas, start=Fraction(0)) < W  # master kept a share

    def test_custom_order(self):
        W = Fraction(40)
        mk_bw, _ = one_round_schedule(W, workers_basic())
        mk_rev, _ = one_round_schedule(W, workers_basic(), order=[2, 1, 0])
        assert mk_bw <= mk_rev  # bandwidth-centric order is optimal

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            one_round_schedule(10, workers_basic(), order=[0, 0, 1])

    def test_tiny_load_drops_workers(self):
        """With big start-ups a small load uses fewer workers."""
        wk = [
            StarWorker(Fraction(1), Fraction(1), Fraction(0)),
            StarWorker(Fraction(1), Fraction(1), Fraction(100)),
        ]
        mk, alphas = one_round_schedule(Fraction(2), wk)
        assert alphas[1] == 0
        assert alphas[0] == 2

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            one_round_schedule(-1, workers_basic())


class TestSteadyRate:
    def test_rate_is_bandwidth_centric(self):
        wk = [
            StarWorker(Fraction(1), Fraction(1)),
            StarWorker(Fraction(1), Fraction(1)),
        ]
        # both saturate: port gives 1 task/time total across c=1 links,
        # workers each absorb <= 1 -> rate = 1
        assert steady_state_rate(wk) == 1

    def test_with_master(self):
        wk = [StarWorker(Fraction(1), Fraction(2))]
        assert steady_state_rate(wk, master_w=Fraction(2)) == 1


class TestMultiRound:
    def test_converges_to_lower_bound(self):
        wk = workers_basic()
        ratios = []
        for W in (100, 1000, 10000, 100000):
            mk = multi_round_makespan(Fraction(W), wk)
            lb = makespan_lower_bound(Fraction(W), wk)
            ratios.append(float(mk / lb))
        assert ratios[-1] < 1.05
        assert ratios == sorted(ratios, reverse=True)

    def test_beats_one_round_eventually(self):
        """§5.2's point: amortised start-ups win for large loads."""
        wk = workers_basic()
        W = Fraction(100_000)
        multi = multi_round_makespan(W, wk)
        single, _ = one_round_schedule(W, wk)
        assert multi < single

    def test_one_round_wins_small_loads(self):
        wk = workers_basic()
        W = Fraction(10)
        multi = multi_round_makespan(W, wk)
        single, _ = one_round_schedule(W, wk)
        assert single <= multi

    def test_explicit_round_scale(self):
        wk = workers_basic()
        W = Fraction(1000)
        default = multi_round_makespan(W, wk)
        tiny_rounds = multi_round_makespan(W, wk, rounds_scale=1)
        # m=1 pays a start-up every period: strictly worse
        assert default < tiny_rounds
