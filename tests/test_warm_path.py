"""The first-class warm path, end to end: for every problem declaring
``warm_resolve``, a basis-restart warm re-solve after a randomized
weight-only mutation returns the identical ``Fraction`` throughput as a
cold solve — over random star, tree and general platforms — plus the
eviction/restart/pivot counters the service surfaces in ``/metrics``."""

from __future__ import annotations

import dataclasses
import random
from fractions import Fraction

import pytest

from repro._rational import INF, is_infinite
from repro.platform import generators
from repro.platform.graph import Platform
from repro.problems import (
    AllToAllSpec,
    GatherSpec,
    MasterSlaveSpec,
    MultiportSpec,
    ScatterSpec,
    SendOrReceiveSpec,
    registered_problems,
    resolve,
)
from repro.service import Broker, IncrementalSolver, SolveRequest
from repro.service.broker import execute_request, solution_throughput

WARM_PROBLEMS = (
    "master-slave", "scatter", "gather", "all-to-all", "multiport",
    "send-or-receive",
)


def _reweight(platform: Platform, rng: random.Random) -> Platform:
    """Same topology, every weight independently re-drawn (the monitoring
    regime: per-node load changes, per-link bandwidth changes)."""
    out = Platform(platform.name)
    for spec in platform._nodes.values():  # noqa: SLF001 — test helper
        if is_infinite(spec.w):
            out.add_node(spec.name, INF)
        else:
            out.add_node(spec.name,
                         Fraction(rng.randint(1, 12), rng.randint(1, 4)))
    for spec in platform.edges():
        out.add_edge(spec.src, spec.dst,
                     Fraction(rng.randint(1, 10), rng.randint(1, 4)))
    return out


def _spec_for(problem: str, platform: Platform, root, others):
    others = tuple(others)
    return {
        "master-slave": lambda: MasterSlaveSpec(platform=platform, master=root),
        "scatter": lambda: ScatterSpec(platform=platform, source=root,
                                       targets=others),
        "gather": lambda: GatherSpec(platform=platform, sink=root,
                                     sources=others),
        "all-to-all": lambda: AllToAllSpec(platform=platform),
        "multiport": lambda: MultiportSpec(platform=platform, master=root,
                                           ports=2),
        "send-or-receive": lambda: SendOrReceiveSpec(platform=platform,
                                                     master=root),
    }[problem]()


def _platform_pool():
    return [
        ("star", generators.star(3, bidirectional=True), "M",
         ("W1", "W2", "W3")),
        ("tree", generators.binary_tree(2, seed=7), "T0", ("T1", "T2")),
        ("general", generators.random_connected(5, seed=11), "R0",
         ("R1", "R2")),
    ]


class TestWarmEqualsColdProperty:
    """The ISSUE's property test: randomized weight mutations, identical
    Fraction throughput from the basis-restart warm path, for every
    warm-capable problem kind."""

    @pytest.mark.parametrize("problem", WARM_PROBLEMS)
    def test_randomized_mutations_are_exact(self, problem):
        rng = random.Random(hash(problem) & 0xFFFF)
        for name, base, root, others in _platform_pool():
            inc = IncrementalSolver()
            base_spec = _spec_for(problem, base, root, others)
            inc.solve_spec(base_spec)  # prime the hot model + basis
            for trial in range(3):
                mutated = _reweight(base, rng)
                spec = dataclasses.replace(base_spec, platform=mutated)
                warm_sol, warm = inc.solve_spec_ex(spec)
                assert warm, f"{problem}/{name}: warm path not taken"
                cold_sol = execute_request(SolveRequest.from_spec(spec))
                assert (solution_throughput(warm_sol)
                        == solution_throughput(cold_sol)), (
                    f"{problem}/{name} trial {trial}: warm != cold"
                )
            stats = inc.stats
            assert stats.warm_solves == 3
            assert stats.basis_restarts + stats.basis_fallbacks == 3

    def test_a2a_warm_hit_keeps_the_requesters_participant_order(self):
        # the hot-model key sorts participants, so two orderings share a
        # model — but the packaged solution must reflect THIS request's
        # ordering, identically to a cold solve of the same spec
        g = generators.star(2, bidirectional=True)
        inc = IncrementalSolver()
        inc.solve_spec(AllToAllSpec(platform=g,
                                    participants=("M", "W1", "W2")))
        spec = AllToAllSpec(platform=g, participants=("W2", "W1", "M"))
        warm_sol, warm = inc.solve_spec_ex(spec)
        assert warm
        cold_sol = execute_request(SolveRequest.from_spec(spec))
        assert warm_sol.targets == cold_sol.targets == ("W2", "W1", "M")
        assert warm_sol.throughput == cold_sol.throughput

    def test_all_warm_capable_problems_are_covered(self):
        declared = {p for p in registered_problems()
                    if resolve(p).capabilities.warm_resolve}
        assert declared == set(WARM_PROBLEMS)  # 6 of 10
        for problem in declared:
            assert resolve(problem).warm_model is not None


class TestWarmStatsAndEvictions:
    def test_model_cache_evictions_are_counted(self):
        inc = IncrementalSolver(max_models=1)
        inc.solve_master_slave(generators.star(2), "M")
        assert inc.stats.evictions == 0
        inc.solve_master_slave(generators.star(3), "M")  # distinct topology
        assert inc.stats.evictions == 1
        assert len(inc) == 1

    def test_basis_restart_counters_move_on_warm_solves(self):
        g = generators.paper_figure1()
        inc = IncrementalSolver()
        inc.solve_master_slave(g, "P1")
        assert inc.stats.cold_pivots > 0
        inc.solve_master_slave(g.scale(compute=Fraction(5, 4)), "P1")
        stats = inc.stats
        assert stats.warm_solves == 1
        assert stats.basis_restarts == 1
        assert stats.basis_fallbacks == 0
        # a basis restart re-solves with (far) fewer pivots than cold
        assert stats.warm_pivots < stats.cold_pivots

    def test_counters_surface_in_broker_snapshot(self):
        g = generators.paper_figure1()
        with Broker(executor="sync") as broker:
            broker.solve(SolveRequest(problem="master-slave", platform=g,
                                      master="P1"))
            broker.solve(SolveRequest(problem="master-slave",
                                      platform=g.scale(compute=2),
                                      master="P1"))
            snap = broker.snapshot()
        inc = snap["incremental"]
        for key in ("hot_models", "warm_solves", "full_rebuilds",
                    "evictions", "basis_restarts", "phase1_skips",
                    "basis_fallbacks", "warm_pivots", "cold_pivots"):
            assert key in inc, f"missing {key} in /metrics incremental"
        assert inc["warm_solves"] == 1 and inc["basis_restarts"] == 1

    def test_non_exact_backend_skips_the_instance_path(self):
        pytest.importorskip("scipy")
        g = generators.star(3)
        inc = IncrementalSolver(backend="scipy")
        inc.solve_master_slave(g, "M")
        inc.solve_master_slave(g.scale(compute=2), "M")
        stats = inc.stats
        assert stats.warm_solves == 1
        # no exact instance: no pivot/restart accounting
        assert stats.warm_pivots == 0 and stats.basis_restarts == 0
