"""Failure-injection tests: graceful degradation of demand-driven runs."""

from fractions import Fraction

import pytest

from repro.baselines.greedy import run_demand_driven
from repro.core.master_slave import ntask
from repro.platform import generators as gen


class TestCpuFailures:
    def test_dead_worker_contributes_nothing_after_failure(self, star4):
        clean = run_demand_driven(star4, "M", 200, policy="bandwidth")
        failed = run_demand_driven(
            star4, "M", 200, policy="bandwidth", failures={"W1": 0}
        )
        assert failed.completed["W1"] == 0
        assert failed.total_completed < clean.total_completed

    def test_mid_run_failure_partial_work(self, star4):
        res = run_demand_driven(
            star4, "M", 200, policy="bandwidth",
            failures={"W1": Fraction(100)},
        )
        # W1 worked the first half only
        full = run_demand_driven(star4, "M", 200, policy="bandwidth")
        assert 0 < res.completed["W1"] < full.completed["W1"]

    def test_system_keeps_running(self, star4):
        """Surviving nodes keep pulling work: no deadlock, no crash."""
        res = run_demand_driven(
            star4, "M", 300, policy="bandwidth",
            failures={"W1": 0, "W2": 0, "W3": 0, "W4": 0},
        )
        # only the master computes, at its own rate
        assert res.completed["M"] > 0
        assert res.total_completed == res.completed["M"]
        res.trace.validate("one-port")

    def test_master_failure_stops_everything_eventually(self, star4):
        res = run_demand_driven(
            star4, "M", 300, policy="bandwidth", failures={"M": 0}
        )
        assert res.completed["M"] == 0
        # distribution continues: the master's port still ships files
        assert sum(res.completed.values()) > 0

    def test_intermediate_failure_on_tree(self, tree3):
        """An inner node's CPU death must not block its subtree's feed
        (forwarding survives in this failure model)."""
        inner = "T1"
        res = run_demand_driven(
            tree3, "T0", 400, policy="bandwidth", failures={inner: 0}
        )
        assert res.completed[inner] == 0
        subtree = [n for n in tree3.reachable_from(inner) if n != inner]
        assert any(res.completed[n] > 0 for n in subtree)

    def test_rate_still_bounded_by_lp(self, star4):
        lp = ntask(star4, "M")
        res = run_demand_driven(
            star4, "M", 200, policy="bandwidth",
            failures={"W2": Fraction(50)},
        )
        assert res.rate <= lp

    def test_traces_stay_valid_under_failures(self, grid33):
        res = run_demand_driven(
            grid33, "G0_0", 120, policy="bandwidth",
            failures={"G1_1": Fraction(30), "G2_2": 0},
        )
        res.trace.validate("one-port")
        res.trace.check_matched_transfers()
