"""SSPS(G) tests: scatter, gather and personalised all-to-all (§3.2, §4.2)."""

from fractions import Fraction

import pytest

from repro.core.scatter import (
    solve_all_to_all,
    solve_gather,
    solve_scatter,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError


class TestScatterBasics:
    def test_star_closed_form(self):
        """One-port at the source: TP * sum(c_k) <= 1."""
        g = gen.star(3, worker_w=[1, 1, 1], link_c=[1, 2, 3])
        sol = solve_scatter(g, "M", ["W1", "W2", "W3"])
        assert sol.throughput == Fraction(1, 6)

    def test_single_target_direct_link(self):
        g = gen.star(1, link_c=[4])
        sol = solve_scatter(g, "M", ["W1"])
        assert sol.throughput == Fraction(1, 4)

    def test_fig2_scatter(self, fig2):
        """Both targets reachable over disjoint unit links: 2 TP <= 1."""
        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        assert sol.throughput == Fraction(1, 2)

    def test_relay_scatter(self):
        """Messages to a far target are forwarded by intermediate nodes."""
        g = gen.chain(3, link_c=1)
        sol = solve_scatter(g, "N0", ["N1", "N2"])
        # N0 sends both commodities over its single out-edge: rate 2TP <= 1.
        assert sol.throughput == Fraction(1, 2)
        # commodity for N2 must cross both edges
        assert sol.send[("N0", "N1", "N2")] == Fraction(1, 2)
        assert sol.send[("N1", "N2", "N2")] == Fraction(1, 2)

    def test_solution_verifies(self, fig2):
        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sol.verify()

    def test_net_delivery_equals_throughput(self, fig2):
        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        for k in ("P5", "P6"):
            inflow = sum(
                (sol.send.get((j, k, k), Fraction(0))
                 for j in fig2.predecessors(k)),
                start=Fraction(0),
            )
            outflow = sum(
                (sol.send.get((k, j, k), Fraction(0))
                 for j in fig2.successors(k)),
                start=Fraction(0),
            )
            assert outflow == 0  # targets never re-emit their own messages
            assert inflow == sol.throughput

    def test_multipath_scatter_uses_parallel_routes(self):
        """Two disjoint routes to one target double the deliverable rate
        (up to the target's receive port)."""
        g = Platform("two-routes")
        for n in ("S", "A", "B", "T"):
            g.add_node(n, 1)
        g.add_edge("S", "A", 1)
        g.add_edge("S", "B", 1)
        g.add_edge("A", "T", 1)
        g.add_edge("B", "T", 1)
        sol = solve_scatter(g, "S", ["T"])
        # source port: (fA + fB) * 1 <= 1 and T's receive port likewise
        assert sol.throughput == 1

    def test_validation_errors(self, fig2):
        with pytest.raises(PlatformError):
            solve_scatter(fig2, "P0", [])
        with pytest.raises(PlatformError):
            solve_scatter(fig2, "P0", ["P0"])
        with pytest.raises(PlatformError):
            solve_scatter(fig2, "P0", ["P5", "P5"])

    def test_scipy_backend(self, fig2):
        exact = solve_scatter(fig2, "P0", ["P5", "P6"])
        approx = solve_scatter(fig2, "P0", ["P5", "P6"], backend="scipy")
        assert abs(float(exact.throughput) - float(approx.throughput)) < 1e-7


class TestGather:
    def test_star_gather_mirror(self):
        g = gen.star(3, worker_w=[1, 1, 1], link_c=[1, 2, 3],
                     bidirectional=True)
        sol = solve_gather(g, "M", ["W1", "W2", "W3"])
        assert sol.throughput == Fraction(1, 6)

    def test_gather_flows_point_towards_sink(self):
        g = gen.star(2, worker_w=[1, 1], link_c=[1, 1], bidirectional=True)
        sol = solve_gather(g, "M", ["W1", "W2"])
        for (i, j, k), rate in sol.send.items():
            if rate > 0:
                assert j == "M"  # star: single hop into the sink

    def test_gather_equals_scatter_on_reversed(self):
        g = gen.grid2d(2, 2, seed=4)
        targets = [n for n in g.nodes() if n != "G0_0"]
        scatter_tp = solve_scatter(g, "G0_0", targets).throughput
        gather_tp = solve_gather(g, "G0_0", targets).throughput
        # symmetric bidirectional grid: the two problems coincide
        assert scatter_tp == gather_tp


class TestAllToAll:
    def test_triangle(self):
        p = Platform("tri")
        for n in "ABC":
            p.add_node(n, 1)
        for a, b in [("A", "B"), ("B", "C"), ("C", "A"),
                     ("B", "A"), ("C", "B"), ("A", "C")]:
            p.add_edge(a, b, 1)
        tp, flows = solve_all_to_all(p)
        assert tp == Fraction(1, 2)

    def test_two_nodes(self):
        p = Platform("pair")
        p.add_node("A", 1)
        p.add_node("B", 1)
        p.add_bidirectional_edge("A", "B", 2)
        tp, flows = solve_all_to_all(p)
        assert tp == Fraction(1, 2)
        assert flows[("A", "B", "A", "B")] == Fraction(1, 2)

    def test_subset_participants(self):
        g = gen.grid2d(2, 2, seed=4)
        tp, _ = solve_all_to_all(g, participants=["G0_0", "G1_1"])
        assert tp > 0

    def test_validation(self):
        p = Platform("solo")
        p.add_node("A", 1)
        with pytest.raises(PlatformError):
            solve_all_to_all(p)
