"""Every example must run to completion and print its headline artefacts."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "throughput = 3/2" in out
        assert "deficit" in out
        assert "round-robin" in out

    def test_multicast_counterexample(self):
        out = run_example("multicast_counterexample.py")
        assert "Figure 3(a)" in out
        assert "P3 -> P4" in out
        assert "3/4" in out
        assert "NP-hard" in out

    def test_grid_collectives(self):
        out = run_example("grid_collectives.py")
        assert "scatter" in out
        assert "broadcast" in out
        assert "reduce" in out

    def test_adaptive_grid(self):
        out = run_example("adaptive_grid.py")
        assert "adaptive" in out
        assert "oracle" in out

    def test_divisible_load(self):
        out = run_example("divisible_load.py")
        assert "one-round" in out
        assert "multi-round" in out

    def test_topology_discovery(self):
        out = run_example("topology_discovery.py")
        assert "env-tree" in out
        assert "truth" in out

    def test_certificates_and_execution(self):
        out = run_example("certificates_and_execution.py")
        assert "certificate" in out
        assert "tight: True" in out
        assert "one-port" in out
