"""Tests for the per-commodity scatter executor."""

from fractions import Fraction

import pytest

from repro.core.scatter import solve_scatter
from repro.platform import generators as gen
from repro.schedule.reconstruction import reconstruct_schedule
from repro.simulator.collective_runner import (
    CollectiveRunner,
    max_route_length,
)


def scatter_schedule(platform, source, targets):
    sol = solve_scatter(platform, source, targets)
    return sol, reconstruct_schedule(sol)


class TestCollectiveRunner:
    def test_fig2_delivery_rate(self, fig2):
        sol, sched = scatter_schedule(fig2, "P0", ["P5", "P6"])
        res = CollectiveRunner(sched).run(20)
        per_period_target = sol.throughput * sched.period
        for k in ("P5", "P6"):
            # steady delivery after priming
            assert res.per_period[k][-1] == per_period_target
            assert res.deficit(k) >= 0

    def test_priming_bounded_by_route_length(self):
        g = gen.chain(4, link_c=1)
        sol, sched = scatter_schedule(g, "N0", ["N1", "N2", "N3"])
        res = CollectiveRunner(sched).run(12)
        hops = max_route_length(sched)
        per_period_target = sol.throughput * sched.period
        for k in ("N1", "N2", "N3"):
            for p in range(hops, 12):
                assert res.per_period[k][p] == per_period_target

    def test_deficit_constant(self, fig2):
        sol, sched = scatter_schedule(fig2, "P0", ["P5", "P6"])
        short = CollectiveRunner(sched).run(8)
        long = CollectiveRunner(sched).run(30)
        for k in ("P5", "P6"):
            assert short.deficit(k) == long.deficit(k)

    def test_total_delivery_bound(self, fig2):
        sol, sched = scatter_schedule(fig2, "P0", ["P5", "P6"])
        res = CollectiveRunner(sched).run(15)
        for k in ("P5", "P6"):
            assert res.delivered[k] <= res.bound(k)

    def test_rejects_master_slave_schedule(self, star4):
        from repro.core.master_slave import solve_master_slave

        sol = solve_master_slave(star4, "M")
        sched = reconstruct_schedule(sol)
        with pytest.raises(ValueError):
            CollectiveRunner(sched)

    def test_zero_periods(self, fig2):
        sol, sched = scatter_schedule(fig2, "P0", ["P5", "P6"])
        res = CollectiveRunner(sched).run(0)
        assert all(v == 0 for v in res.delivered.values())

    def test_negative_periods_rejected(self, fig2):
        sol, sched = scatter_schedule(fig2, "P0", ["P5", "P6"])
        with pytest.raises(ValueError):
            CollectiveRunner(sched).run(-1)

    def test_max_route_length(self, fig2):
        sol, sched = scatter_schedule(fig2, "P0", ["P5", "P6"])
        assert max_route_length(sched) == 2  # P0 -> P1/P2 -> target
