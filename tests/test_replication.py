"""Hot-key replication + broker near-cache: heat sketch semantics, the
replica fan-out across thread/process/TCP shard modes, generation-checked
staleness impossibility, and deduplicated aggregate cache accounting."""

from __future__ import annotations

import multiprocessing
import socket
import threading
import time
from fractions import Fraction

import pytest

from repro.platform import generators
from repro.platform.serialization import platform_to_dict
from repro.service import (
    Broker,
    HeatSketch,
    ShardedBroker,
    SolutionCache,
    SolveRequest,
)
from repro.service import broker as broker_mod
from repro.service.broker import SolveEngine
from repro.service.metrics import render_prometheus
from repro.service.sharding import _merge_cache_snapshots
from repro.service.transport import handle_shard_message
from repro.service.wire import result_to_wire

from test_sharding import _mixed_requests, _reference_results


def _hot_request():
    return SolveRequest(problem="master-slave",
                        platform=generators.paper_figure1(), master="P1")


def _wait_until(predicate, timeout=10.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


# ----------------------------------------------------------------------
# the space-saving heat sketch
# ----------------------------------------------------------------------
class TestHeatSketch:
    def test_exact_counts_under_capacity(self):
        sketch = HeatSketch(capacity=8)
        for _ in range(3):
            sketch.record("a")
        sketch.record("b")
        assert sketch.count("a") == 3
        assert sketch.count("b") == 1
        assert sketch.count("never") == 0
        assert len(sketch) == 2

    def test_capacity_bound_and_inherited_floor(self):
        sketch = HeatSketch(capacity=2)
        sketch.record("a")
        sketch.record("a")
        sketch.record("b")
        # full: a new key replaces the coldest (b, count 1) and inherits
        # its count + 1 — the space-saving over-estimate
        assert sketch.record("c") == 2
        assert len(sketch) == 2
        assert sketch.count("b") == 0
        assert sketch.evictions == 1

    def test_hot_key_survives_a_cold_tail(self):
        # the property replication keys off: a genuinely hot key stays
        # tracked while a long one-shot tail churns through the sketch
        sketch = HeatSketch(capacity=16)
        for i in range(400):
            sketch.record("hot")
            sketch.record(f"cold-{i}")
        ranked = sketch.hot_keys(top=1)
        assert ranked[0][0] == "hot"
        assert ranked[0][1] >= 400  # never under-estimated

    def test_hot_keys_ordering_and_min_count(self):
        sketch = HeatSketch(capacity=8)
        for key, times in (("a", 3), ("b", 1), ("c", 3), ("d", 2)):
            for _ in range(times):
                sketch.record(key)
        assert [k for k, _ in sketch.hot_keys()] == ["a", "c", "d", "b"]
        assert [k for k, _ in sketch.hot_keys(min_count=2)] == \
            ["a", "c", "d"]
        assert sketch.hot_keys(top=2) == [("a", 3), ("c", 3)]

    def test_snapshot_and_clear(self):
        sketch = HeatSketch(capacity=4)
        sketch.record("x")
        snap = sketch.snapshot()
        assert snap["capacity"] == 4
        assert snap["tracked"] == 1
        assert snap["hot_keys"] == [{"fingerprint": "x", "count": 1}]
        sketch.clear()
        assert len(sketch) == 0
        assert sketch.count("x") == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatSketch(capacity=0)

    def test_concurrent_records_stay_exact_within_capacity(self):
        sketch = HeatSketch(capacity=32)
        keys = [f"k{i}" for i in range(20)]

        def worker():
            for _ in range(100):
                for key in keys:
                    sketch.record(key)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # capacity exceeds the key universe: no evictions, exact counts
        assert all(sketch.count(k) == 400 for k in keys)


# ----------------------------------------------------------------------
# thread shards: near-cache + replica rotation
# ----------------------------------------------------------------------
class TestThreadModeHotPath:
    def test_near_cache_serves_the_hot_head_exactly(self):
        req = _hot_request()
        reference = _reference_results([req])[0]
        with ShardedBroker(shards=4, shard_mode="thread",
                           replication_factor=2, near_cache_size=8,
                           hot_threshold=2) as sharded:
            results = [sharded.solve(req) for _ in range(6)]
            for got in results:
                assert got.throughput == reference.throughput  # exact
            rep = sharded.snapshot()["replication"]
            assert rep["factor"] == 2
            assert rep["near_cache"]["hits"] >= 1
            assert rep["near_cache"]["size"] == 1
            # the near hit is counted as a front-door request
            assert rep["near_cache"]["stale_rejects"] == 0
            hot = [h["fingerprint"] for h in rep["heat"]["hot_keys"]]
            assert req.fingerprint() in hot

    def test_replication_copies_hot_key_to_both_replicas(self):
        req = _hot_request()
        fp = req.fingerprint()
        with ShardedBroker(shards=4, shard_mode="thread",
                           replication_factor=2, near_cache_size=0,
                           hot_threshold=1) as sharded:
            replicas = sharded.ring.successors(fp, 2)
            for _ in range(4):
                sharded.solve(req)
            holders = [sid for sid, broker in
                       enumerate(sharded._thread_shards)
                       if broker.cache.peek(fp) is not None]
            assert sorted(holders) == sorted(replicas)
            rep = sharded.snapshot()["replication"]
            assert rep["replicated_puts"] >= 1
            # rotation actually lands reads off the primary
            assert rep["replica_reads"] >= 1

    def test_replica_rotation_spreads_requests(self):
        req = _hot_request()
        fp = req.fingerprint()
        with ShardedBroker(shards=4, shard_mode="thread",
                           replication_factor=2, near_cache_size=0,
                           hot_threshold=1) as sharded:
            for _ in range(8):
                sharded.solve(req)
            replicas = sharded.ring.successors(fp, 2)
            per_shard = sharded.snapshot()["per_shard"]
            served = {s["shard"]: s["requests"] for s in per_shard}
            assert all(served[sid] >= 2 for sid in replicas)

    def test_cold_keys_keep_single_owner_routing(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=4, shard_mode="thread",
                           replication_factor=2, near_cache_size=8,
                           hot_threshold=50) as sharded:
            out = [sharded.solve(r) for r in requests]
            for ref, got in zip(reference, out):
                assert got.throughput == ref.throughput
            rep = sharded.snapshot()["replication"]
            assert rep["replicated_puts"] == 0
            assert rep["replica_reads"] == 0
            assert rep["near_cache"]["size"] == 0
            # every fingerprint lives on exactly one shard
            cache = sharded.snapshot()["cache"]
            assert cache["unique_size"] == cache["size"]

    def test_submit_path_replicates_too(self):
        req = _hot_request()
        fp = req.fingerprint()
        with ShardedBroker(shards=4, shard_mode="thread",
                           replication_factor=2, near_cache_size=0,
                           hot_threshold=1) as sharded:
            for _ in range(4):
                sharded.submit(req).result(10)
            replicas = sharded.ring.successors(fp, 2)
            assert _wait_until(lambda: all(
                sharded._thread_shards[sid].cache.peek(fp) is not None
                for sid in replicas))

    def test_invalidate_platform_flushes_near_cache(self):
        req = _hot_request()
        fp = req.fingerprint()
        with ShardedBroker(shards=2, shard_mode="thread",
                           replication_factor=1, near_cache_size=8,
                           hot_threshold=1) as sharded:
            for _ in range(3):
                sharded.solve(req)
            assert sharded._near_cache.peek(fp) is not None
            removed = sharded.invalidate_platform(req.platform)
            # near-cache copies are duplicates: not in the removed count
            assert removed == 1
            assert sharded._near_cache.peek(fp) is None
            # and clear() empties it as well
            sharded.solve(req)
            assert _wait_until(
                lambda: sharded._near_cache.peek(fp) is not None)
            sharded.clear()
            assert sharded._near_cache.peek(fp) is None


# ----------------------------------------------------------------------
# staleness impossibility: invalidation racing the replicated fan-out
# ----------------------------------------------------------------------
class TestReplicatedStalenessRace:
    def test_racing_invalidation_leaves_no_stale_entry_anywhere(
            self, monkeypatch):
        release = threading.Event()
        started = threading.Event()
        real = broker_mod.execute_request

        def slow(request):
            started.set()
            assert release.wait(10)
            return real(request)

        monkeypatch.setattr(broker_mod, "execute_request", slow)
        platform = generators.chain(3)
        with ShardedBroker(shards=2, shard_mode="thread", workers=2,
                           incremental=False, replication_factor=2,
                           near_cache_size=8,
                           hot_threshold=1) as sharded:
            req = SolveRequest(problem="broadcast", platform=platform,
                               source="N0")
            fp = req.fingerprint()
            fut = sharded.submit(req)  # hot from lookup one
            assert started.wait(10)  # generations captured, solve running
            assert sharded.invalidate_platform(platform) == 0
            release.set()
            result = fut.result(10)  # the caller still gets its answer
            assert result.throughput == Fraction(1)
            # every late write must have been refused: serving shard
            # (engine generation check), the replica fan-out, and the
            # near-cache admission
            assert _wait_until(
                lambda: sharded.snapshot()["replication"]
                ["near_cache"]["stale_rejects"] >= 1)
            assert _wait_until(lambda: sharded.replica_put_rejects >= 1)
            for broker in sharded._thread_shards:
                assert broker.cache.peek(fp) is None
            assert sharded._near_cache.peek(fp) is None
            merged = sharded.snapshot()["cache"]
            assert merged["size"] == 0
            assert merged["stale_puts"] >= 1
            # and the service recovers: the next solve is fresh + exact
            fresh = sharded.solve(req)
            assert fresh.throughput == Fraction(1)


# ----------------------------------------------------------------------
# the shard-protocol put op (transport-mode fan-out building block)
# ----------------------------------------------------------------------
class TestShardPutOp:
    def _engine_with_result(self):
        engine = SolveEngine(cache=SolutionCache())
        req = _hot_request()
        fp = req.fingerprint()
        result = engine.run(req, fp)
        engine.cache.clear()  # keep the wire result, drop the entry
        return engine, req, fp, result

    def test_put_with_current_generation_lands(self):
        engine, req, fp, result = self._engine_with_result()
        entry = {"fp": fp, "result": result_to_wire(result),
                 "platform": platform_to_dict(req.platform),
                 "gen": engine.cache.generation}
        reply = handle_shard_message(engine, {"op": "put",
                                              "entries": [entry]})
        assert reply["ok"] and reply["stored"] == 1
        assert reply["stale"] == 0 and reply["skipped"] == 0
        assert engine.cache.peek(fp) is not None
        cached = engine.run(req, fp)
        assert cached.cached
        assert cached.solution.throughput == result.solution.throughput

    def test_put_without_generation_is_rejected_but_seeds_the_bound(self):
        engine, req, fp, result = self._engine_with_result()
        entry = {"fp": fp, "result": result_to_wire(result),
                 "platform": platform_to_dict(req.platform)}
        reply = handle_shard_message(engine, {"op": "put",
                                              "entries": [entry]})
        assert reply["ok"] and reply["skipped"] == 1
        assert reply["stored"] == 0
        assert engine.cache.peek(fp) is None  # never stored unguarded
        # the reply carries the generation the writer was missing
        assert reply["gen"] == engine.cache.generation

    def test_put_with_stale_generation_is_refused(self):
        engine, req, fp, result = self._engine_with_result()
        old_gen = engine.cache.generation
        engine.invalidate_platform(req.platform)
        entry = {"fp": fp, "result": result_to_wire(result),
                 "platform": platform_to_dict(req.platform),
                 "gen": old_gen}
        reply = handle_shard_message(engine, {"op": "put",
                                              "entries": [entry]})
        assert reply["ok"] and reply["stale"] == 1
        assert engine.cache.peek(fp) is None
        assert engine.cache.stats.stale_puts == 1

    def test_every_reply_carries_the_generation(self):
        engine, req, fp, _ = self._engine_with_result()
        for msg in ({"op": "ping"},
                    {"op": "clear"},
                    {"op": "snapshot"},
                    {"op": "invalidate",
                     "platform": platform_to_dict(req.platform)}):
            reply = handle_shard_message(engine, dict(msg))
            assert reply["ok"]
            assert reply["gen"] == engine.cache.generation

    def test_snapshot_op_ships_keys_for_dedup(self):
        engine, req, fp, _ = self._engine_with_result()
        engine.run(req, fp)
        reply = handle_shard_message(engine, {"op": "snapshot"})
        assert reply["snapshot"]["cache"]["keys"] == [fp]


# ----------------------------------------------------------------------
# transport modes: process (pipe) and TCP shards
# ----------------------------------------------------------------------
class TestProcessModeReplication:
    def test_hot_keys_replicate_and_results_stay_exact(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        with ShardedBroker(shards=2, shard_mode="process",
                           replication_factor=2, near_cache_size=16,
                           hot_threshold=2) as sharded:
            for _ in range(3):
                out = [sharded.solve(r) for r in requests]
                for ref, got in zip(reference, out):
                    assert got.fingerprint == ref.fingerprint
                    assert got.throughput == ref.throughput  # exact
            sharded.flush_replication(timeout=10)
            rep = sharded.snapshot()["replication"]
            # round 1 heats keys; round 2 fans out (first put per shard
            # may only seed the generation bound); round 3 lands
            assert rep["replicated_puts"] >= 1
            assert rep["near_cache"]["stale_rejects"] == 0
            cache = sharded.snapshot()["cache"]
            assert cache["unique_size"] <= cache["size"]

    def test_batch_path_replicates_hot_keys(self):
        req = SolveRequest(problem="broadcast",
                           platform=generators.chain(5), source="N0")
        fp = req.fingerprint()
        reference = _reference_results([req])[0]
        with ShardedBroker(shards=2, shard_mode="process",
                           replication_factor=2, near_cache_size=0,
                           hot_threshold=2) as sharded:
            # seed the generation bounds: every shard replies at least
            # once, so the hot fan-out below is generation-guarded
            sharded.solve_batch(_mixed_requests())
            replicas = sharded.ring.successors(fp, 2)
            # lookup 1 is cold (routes to the primary); lookup 2 crosses
            # the threshold and its fan-out gives the OTHER replica its
            # copy via the batched put — no direct solve ever ran there
            for _ in range(2):
                out = sharded.solve_batch([req])
                assert out[0].throughput == reference.throughput
            sharded.flush_replication(timeout=10)
            snap = sharded.snapshot()
            assert snap["replication"]["replicated_puts"] >= 1
            snaps = sharded.shard_snapshots()
            assert all(fp in snaps[sid]["cache"]["keys"]
                       for sid in replicas)
            assert snap["cache"]["size"] == \
                snap["cache"]["unique_size"] + 1

    def test_stale_generation_bound_never_lands_a_replica_put(self):
        req = _hot_request()
        fp = req.fingerprint()
        with ShardedBroker(shards=2, shard_mode="process",
                           replication_factor=2, near_cache_size=0,
                           hot_threshold=1) as sharded:
            sharded.solve(req)          # heat + seed generation bounds
            sharded.flush_replication(timeout=10)
            replicas = sharded.ring.successors(fp, 2)
            # an invalidation lands while this broker's knowledge lags:
            # the shards move to generation 1, the broker still believes
            # 0 (exactly what a concurrent invalidate through a second
            # broker produces)
            sharded.invalidate_platform(req.platform)
            with sharded._rep_lock:
                for sid in replicas:
                    sharded._known_gens[sid] = 0
            before = sharded.replica_put_rejects
            result = sharded.solve(req)  # hot: re-solves on one replica
            sharded.flush_replication(timeout=10)
            assert result.throughput == \
                _reference_results([req])[0].throughput
            # the fan-out carried the stale bound and the shard-side
            # generation check refused it: no replica holds a stale copy
            assert sharded.replica_put_rejects > before
            snaps = sharded.shard_snapshots()
            holders = [sid for sid in replicas
                       if fp in snaps[sid]["cache"]["keys"]]
            assert len(holders) == 1  # only the shard that re-solved
            # the refusal's reply re-seeded the bound: the service heals
            # by itself and both replicas converge on the fresh result
            for _ in range(2):
                sharded.solve(req)
            sharded.flush_replication(timeout=10)
            snaps = sharded.shard_snapshots()
            assert all(fp in snaps[sid]["cache"]["keys"]
                       for sid in replicas)


def _free_port() -> int:
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _run_shard_server(port: int) -> None:  # pragma: no cover — child
    from repro.service import ShardServer

    server = ShardServer(("127.0.0.1", port))
    server.serve_forever()


def _start_shard_process(port: int) -> multiprocessing.Process:
    ctx = multiprocessing.get_context()
    process = ctx.Process(target=_run_shard_server, args=(port,),
                          daemon=True)
    process.start()
    deadline = time.time() + 20
    while time.time() < deadline:
        try:
            socket.create_connection(("127.0.0.1", port),
                                     timeout=0.2).close()
            return process
        except OSError:
            time.sleep(0.05)
    raise RuntimeError("shard server did not come up")


class TestTcpModeReplication:
    def test_replica_reads_stay_fraction_exact_over_tcp(self):
        requests = _mixed_requests()
        reference = _reference_results(requests)
        port = _free_port()
        server = _start_shard_process(port)
        try:
            with ShardedBroker(shards=1,
                               shard_addresses=[f"127.0.0.1:{port}"],
                               health_interval=0,
                               replication_factor=2, near_cache_size=16,
                               hot_threshold=2) as sharded:
                for _ in range(3):
                    out = [sharded.solve(r) for r in requests]
                    for ref, got in zip(reference, out):
                        assert got.throughput == ref.throughput  # exact
                sharded.flush_replication(timeout=10)
                rep = sharded.snapshot()["replication"]
                assert rep["replicated_puts"] >= 1
                assert rep["near_cache"]["stale_rejects"] == 0
        finally:
            server.kill()
            server.join()


# ----------------------------------------------------------------------
# aggregate accounting + exposition
# ----------------------------------------------------------------------
class TestAggregateDedup:
    def test_merge_cache_snapshots_deduplicates_keys(self):
        snaps = [
            {"size": 2, "hits": 1, "misses": 1, "keys": ["a", "b"]},
            {"size": 2, "hits": 3, "misses": 0, "keys": ["b", "c"]},
        ]
        merged = _merge_cache_snapshots(snaps)
        assert merged["size"] == 4          # raw per-shard sum
        assert merged["unique_size"] == 3   # b deduplicated
        assert "keys" not in merged

    def test_unique_size_absent_without_key_lists(self):
        merged = _merge_cache_snapshots([{"size": 2, "hits": 0,
                                          "misses": 0}])
        assert "unique_size" not in merged

    def test_aggregate_cache_view_reports_unique_size(self):
        req = _hot_request()
        with ShardedBroker(shards=4, shard_mode="thread",
                           replication_factor=2, near_cache_size=0,
                           hot_threshold=1) as sharded:
            for _ in range(4):
                sharded.solve(req)
            snap = sharded.cache.snapshot()
            assert snap["unique_size"] == 1
            assert snap["size"] == 2  # both replicas hold the hot key

    def test_prometheus_exposes_replication_metrics(self):
        req = _hot_request()
        with ShardedBroker(shards=2, shard_mode="thread",
                           replication_factor=2, near_cache_size=8,
                           hot_threshold=1) as sharded:
            for _ in range(5):
                sharded.solve(req)
            text = render_prometheus(sharded.snapshot())
        assert "repro_replicated_puts_total" in text
        assert "repro_replica_reads_total" in text
        assert "repro_near_cache_hits_total" in text
        assert "repro_near_cache_stale_rejects_total 0" in text
        assert "repro_shard_load_imbalance" in text
        assert "repro_cache_unique_size 1" in text
