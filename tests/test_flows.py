"""Flow decomposition and cycle cancellation tests."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.platform.graph import Platform
from repro.schedule.flows import (
    FlowError,
    cancel_cycles,
    check_flow_conservation,
    decompose_flow,
)


def diamond():
    g = Platform("diamond")
    for n in "SABT":
        g.add_node(n, 1)
    g.add_edge("S", "A", 1)
    g.add_edge("S", "B", 1)
    g.add_edge("A", "T", 1)
    g.add_edge("B", "T", 1)
    g.add_edge("A", "B", 1)
    return g


class TestCancelCycles:
    def test_no_cycles_untouched(self):
        flow = {("S", "A"): Fraction(1), ("A", "T"): Fraction(1)}
        assert cancel_cycles(flow) == flow

    def test_pure_cycle_removed(self):
        flow = {("A", "B"): Fraction(2), ("B", "A"): Fraction(2)}
        assert cancel_cycles(flow) == {}

    def test_cycle_on_top_of_path(self):
        flow = {
            ("S", "A"): Fraction(1),
            ("A", "T"): Fraction(1),
            ("A", "B"): Fraction(3),
            ("B", "A"): Fraction(3),
        }
        clean = cancel_cycles(flow)
        assert clean == {("S", "A"): Fraction(1), ("A", "T"): Fraction(1)}

    def test_triangle_cycle(self):
        flow = {
            ("A", "B"): Fraction(1),
            ("B", "C"): Fraction(1),
            ("C", "A"): Fraction(1),
        }
        assert cancel_cycles(flow) == {}

    def test_divergence_preserved(self):
        flow = {
            ("S", "A"): Fraction(2),
            ("A", "B"): Fraction(3),
            ("B", "A"): Fraction(1),
            ("A", "T"): Fraction(0),
            ("B", "T"): Fraction(2),
        }
        clean = cancel_cycles(flow)

        def net(f, node):
            out = sum((v for (a, _), v in f.items() if a == node),
                      start=Fraction(0))
            inc = sum((v for (_, b), v in f.items() if b == node),
                      start=Fraction(0))
            return out - inc

        for node in "SABT":
            assert net(flow, node) == net(clean, node)


class TestDecompose:
    def test_single_path(self):
        g = diamond()
        flow = {("S", "A"): Fraction(1), ("A", "T"): Fraction(1)}
        paths = decompose_flow(g, flow, "S", {"T": Fraction(1)})
        assert paths == [(("S", "A", "T"), Fraction(1))]

    def test_split_paths(self):
        g = diamond()
        flow = {
            ("S", "A"): Fraction(1, 2),
            ("S", "B"): Fraction(1, 2),
            ("A", "T"): Fraction(1, 2),
            ("B", "T"): Fraction(1, 2),
        }
        paths = decompose_flow(g, flow, "S", {"T": Fraction(1)})
        assert len(paths) == 2
        assert sum((r for _, r in paths), start=Fraction(0)) == 1

    def test_multi_demand(self):
        g = diamond()
        flow = {
            ("S", "A"): Fraction(1),
            ("A", "B"): Fraction(1, 3),
            ("A", "T"): Fraction(1, 3),
        }
        demands = {"A": Fraction(1, 3), "B": Fraction(1, 3), "T": Fraction(1, 3)}
        paths = decompose_flow(g, flow, "S", demands)
        delivered = {}
        for path, rate in paths:
            delivered[path[-1]] = delivered.get(path[-1], Fraction(0)) + rate
        assert delivered == demands

    def test_flow_with_cycle_still_decomposes(self):
        g = diamond()
        flow = {
            ("S", "A"): Fraction(1),
            ("A", "T"): Fraction(1),
            ("A", "B"): Fraction(2),
            ("B", "A"): Fraction(2),
        }
        paths = decompose_flow(g, flow, "S", {"T": Fraction(1)})
        assert paths == [(("S", "A", "T"), Fraction(1))]

    def test_inconsistent_flow_raises(self):
        g = diamond()
        flow = {("S", "A"): Fraction(1, 2)}
        with pytest.raises(FlowError):
            decompose_flow(g, flow, "S", {"T": Fraction(1)})

    def test_no_demands(self):
        g = diamond()
        assert decompose_flow(g, {}, "S", {}) == []


class TestConservationCheck:
    def test_good_flow_passes(self):
        g = diamond()
        flow = {("S", "A"): Fraction(1), ("A", "T"): Fraction(1)}
        check_flow_conservation(g, flow, "S", {"T": Fraction(1)})

    def test_bad_flow_raises(self):
        g = diamond()
        flow = {("S", "A"): Fraction(1)}
        with pytest.raises(FlowError):
            check_flow_conservation(g, flow, "S", {"T": Fraction(1)})


@st.composite
def random_path_flow(draw):
    """Superpose 1-4 random simple paths on the diamond; decomposition must
    recover a path set with the same per-sink totals."""
    g = diamond()
    all_paths = g.simple_paths("S", "T") + g.simple_paths("S", "B")
    chosen = draw(
        st.lists(
            st.sampled_from(range(len(all_paths))), min_size=1, max_size=4
        )
    )
    rates = [
        draw(st.fractions(min_value=Fraction(1, 4), max_value=Fraction(3),
                          max_denominator=8))
        for _ in chosen
    ]
    flow = {}
    demands = {}
    for idx, rate in zip(chosen, rates):
        path = all_paths[idx]
        for a, b in zip(path, path[1:]):
            flow[(a, b)] = flow.get((a, b), Fraction(0)) + rate
        demands[path[-1]] = demands.get(path[-1], Fraction(0)) + rate
    return g, flow, demands


class TestDecomposeProperty:
    @settings(max_examples=50, deadline=None)
    @given(random_path_flow())
    def test_round_trip(self, data):
        g, flow, demands = data
        paths = decompose_flow(g, flow, "S", demands)
        delivered = {}
        edge_usage = {}
        for path, rate in paths:
            assert path[0] == "S"
            assert rate > 0
            delivered[path[-1]] = delivered.get(path[-1], Fraction(0)) + rate
            for a, b in zip(path, path[1:]):
                edge_usage[(a, b)] = edge_usage.get((a, b), Fraction(0)) + rate
        assert delivered == {k: v for k, v in demands.items() if v > 0}
        # decomposition never uses more of an edge than the flow provided
        for e, used in edge_usage.items():
            assert used <= flow[e]
