"""Shard transport tests: framing, wire codec, pipe/TCP backends, server."""

from __future__ import annotations

import json
import multiprocessing
import socket
import threading
import time
from fractions import Fraction

import pytest

from repro.core.dag import TaskGraph
from repro.platform import generators
from repro.service import (
    Broker,
    ShardServer,
    SolveRequest,
    TransportError,
    TransportTimeout,
    connect,
    parse_shard_address,
    result_from_wire,
    result_to_wire,
)
from repro.service.api import _request_wire
from repro.service.transport import (
    read_frame,
    spawn_pipe_shard,
    write_frame,
)
from repro.service.wire import WireCodecError, solution_to_wire


def _mixed_requests():
    """One request per solution *kind* (plus a schedule round-trip)."""
    fig1 = generators.paper_figure1()
    fig2 = generators.paper_figure2_multicast()
    star_bi = generators.star(3, bidirectional=True)
    return [
        SolveRequest(problem="master-slave", platform=fig1, master="P1",
                     include_schedule=True),
        SolveRequest(problem="scatter", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="gather", platform=star_bi, source="M",
                     targets=("W1", "W2", "W3")),
        SolveRequest(problem="all-to-all", platform=star_bi,
                     targets=("M", "W1", "W2")),
        SolveRequest(problem="broadcast", platform=generators.chain(4),
                     source="N0"),
        SolveRequest(problem="reduce", platform=star_bi, source="M"),
        SolveRequest(problem="multicast", platform=fig2, source="P0",
                     targets=("P5", "P6")),
        SolveRequest(problem="dag", platform=fig1, master="P1",
                     dag=TaskGraph.chain([1, 2], [1])),
        SolveRequest(problem="multiport", platform=fig1, master="P1",
                     options={"ports": 2}),
        SolveRequest(problem="send-or-receive", platform=fig1,
                     master="P1"),
    ]


# ----------------------------------------------------------------------
# the exact result wire codec
# ----------------------------------------------------------------------
class TestResultWireCodec:
    def test_every_solution_kind_roundtrips_exactly(self):
        with Broker(executor="sync") as broker:
            for request in _mixed_requests():
                result = broker.solve(request)
                wire = json.loads(json.dumps(result_to_wire(result)))
                back = result_from_wire(wire)
                assert back.fingerprint == result.fingerprint
                assert back.throughput == result.throughput  # Fraction
                assert type(back.solution) is type(result.solution)
                if result.schedule is not None:
                    assert (back.schedule.throughput
                            == result.schedule.throughput)

    def test_flags_survive(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.star(2), master="M")
        with Broker(executor="sync") as broker:
            broker.solve(req)
            hit = broker.solve(req)
            back = result_from_wire(result_to_wire(hit))
            assert back.cached and not back.warm and not back.coalesced

    def test_packing_is_exact(self):
        req = SolveRequest(problem="broadcast",
                           platform=generators.paper_figure1(),
                           source="P1")
        with Broker(executor="sync") as broker:
            result = broker.solve(req)
        back = result_from_wire(
            json.loads(json.dumps(result_to_wire(result)))
        )
        assert back.solution.packing == result.solution.packing
        assert back.solution.lp_bound == result.solution.lp_bound

    def test_unknown_solution_type_fails_at_encode_time(self):
        with pytest.raises(WireCodecError, match="no wire encoding"):
            solution_to_wire(object())

    def test_newer_wire_version_fails_loudly(self):
        req = SolveRequest(problem="master-slave",
                           platform=generators.star(2), master="M")
        with Broker(executor="sync") as broker:
            wire = result_to_wire(broker.solve(req))
        wire["version"] = 99
        with pytest.raises(WireCodecError, match="newer"):
            result_from_wire(wire)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_over_a_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "solve", "payload": ["ünïcode", 1, None]}
            write_frame(a, message)
            assert read_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_garbage_peer_is_a_transport_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff garbage")
            with pytest.raises(TransportError, match="frame"):
                read_frame(b)
        finally:
            a.close()
            b.close()

    def test_closed_peer_is_a_transport_error(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(TransportError, match="closed"):
                read_frame(b)
        finally:
            b.close()

    def test_non_object_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            blob = json.dumps([1, 2, 3]).encode()
            a.sendall(len(blob).to_bytes(4, "big") + blob)
            with pytest.raises(TransportError, match="object"):
                read_frame(b)
        finally:
            a.close()
            b.close()


class TestAddressParsing:
    def test_accepts_bare_and_scheme_forms(self):
        assert parse_shard_address("example.org:8590") == ("example.org",
                                                           8590)
        assert parse_shard_address("tcp://10.0.0.7:1234") == ("10.0.0.7",
                                                              1234)

    @pytest.mark.parametrize("bad", ["nope", ":8590", "host:", "host:0",
                                     "host:notaport", "host:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_shard_address(bad)


# ----------------------------------------------------------------------
# pipe transport (local worker process)
# ----------------------------------------------------------------------
class TestPipeTransport:
    def _spawn(self):
        return spawn_pipe_shard(multiprocessing.get_context(), 64, None,
                                True)

    def test_solve_roundtrip_and_ping(self):
        transport = self._spawn()
        try:
            assert transport.ping(timeout=10.0)
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1")
            reply = transport.request({
                "op": "solve", "fp": req.fingerprint(),
                "request": _request_wire(req),
            })
            assert reply["ok"]
            assert result_from_wire(reply["result"]).throughput == Fraction(2)
        finally:
            transport.close(stop_timeout=2.0)
        assert not transport.process.is_alive()

    def test_request_timeout_poisons_the_transport(self):
        transport = self._spawn()
        try:
            with pytest.raises(TransportTimeout):
                transport.request({"op": "sleep", "seconds": 5.0},
                                  timeout=0.2)
            assert transport.closed
            # a poisoned pipe refuses further use instead of pairing the
            # stale in-flight reply with the next request
            with pytest.raises(TransportError):
                transport.request({"op": "ping"})
        finally:
            transport.close(stop_timeout=1.0)

    def test_worker_death_is_a_transport_error(self):
        transport = self._spawn()
        transport.process.kill()
        transport.process.join()
        with pytest.raises(TransportError, match="died"):
            transport.request({"op": "ping"})
        transport.close()

    def test_request_many_pipelines_in_order(self):
        transport = self._spawn()
        try:
            replies = transport.request_many(
                [{"op": "ping"}, {"op": "snapshot"}, {"op": "ping"}]
            )
            assert [("pong" in r, "snapshot" in r) for r in replies] == [
                (True, False), (False, True), (True, False)
            ]
        finally:
            transport.close(stop_timeout=2.0)


# ----------------------------------------------------------------------
# TCP transport + the standalone shard server
# ----------------------------------------------------------------------
@pytest.fixture()
def shard_server():
    server = ShardServer(("127.0.0.1", 0))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


class TestTcpTransport:
    def test_solve_is_exact_and_cache_stays_hot(self, shard_server):
        transport = connect(f"127.0.0.1:{shard_server.port}")
        try:
            req = SolveRequest(problem="master-slave",
                               platform=generators.paper_figure1(),
                               master="P1")
            msg = {"op": "solve", "fp": req.fingerprint(),
                   "request": _request_wire(req)}
            cold = result_from_wire(transport.request(msg)["result"])
            warm = result_from_wire(transport.request(msg)["result"])
            assert cold.throughput == Fraction(2) and not cold.cached
            assert warm.cached  # the server's engine persists across calls
        finally:
            transport.close()

    def test_ping_and_unknown_op(self, shard_server):
        transport = connect(shard_server.address)
        try:
            assert transport.ping(timeout=5.0)
            reply = transport.request({"op": "quantum"})
            assert not reply["ok"] and reply["type"] == "SpecError"
        finally:
            transport.close()

    def test_timeout_drops_the_connection_then_reconnects(self,
                                                          shard_server):
        transport = connect(shard_server.address)
        try:
            with pytest.raises(TransportTimeout):
                transport.request({"op": "sleep", "seconds": 5.0},
                                  timeout=0.2)
            assert transport.closed
            # lazy reconnect: the next request dials again — this is what
            # lets an ejected remote shard rejoin without a new handle
            assert transport.ping(timeout=10.0)
        finally:
            transport.close()

    def test_unreachable_host_is_a_transport_error(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        transport = connect(f"127.0.0.1:{port}", connect_timeout=0.5)
        with pytest.raises(TransportError, match="connect"):
            transport.request({"op": "ping"})

    def test_request_many_pipelines_one_connection(self, shard_server):
        transport = connect(shard_server.address)
        try:
            requests = _mixed_requests()[:4]
            replies = transport.request_many([
                {"op": "solve", "fp": r.fingerprint(),
                 "request": _request_wire(r)}
                for r in requests
            ])
            with Broker(executor="sync") as broker:
                for request, reply in zip(requests, replies):
                    assert reply["ok"]
                    got = result_from_wire(reply["result"])
                    assert got.throughput == broker.solve(request).throughput
        finally:
            transport.close()

    def test_two_clients_share_one_engine(self, shard_server):
        first = connect(shard_server.address)
        second = connect(shard_server.address)
        try:
            req = SolveRequest(problem="master-slave",
                               platform=generators.star(3), master="M")
            msg = {"op": "solve", "fp": req.fingerprint(),
                   "request": _request_wire(req)}
            cold = result_from_wire(first.request(msg)["result"])
            hit = result_from_wire(second.request(msg)["result"])
            assert not cold.cached and hit.cached  # one shared cache
            assert cold.throughput == hit.throughput
        finally:
            first.close()
            second.close()

    def test_stop_op_only_drops_the_connection(self, shard_server):
        transport = connect(shard_server.address)
        reply = transport.request({"op": "stop"})
        assert reply["ok"]
        transport.close()
        # the server survives a client's stop: the operator owns its life
        probe = connect(shard_server.address)
        try:
            assert probe.ping(timeout=5.0)
        finally:
            probe.close()
