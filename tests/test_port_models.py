"""Port-model variant tests (section 5.1)."""

from fractions import Fraction

import pytest

from repro.core.master_slave import solve_master_slave
from repro.core.port_models import (
    greedy_interval_coloring,
    send_or_receive_schedule_length,
    solve_master_slave_multiport,
    solve_master_slave_send_or_receive,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform


class TestThroughputOrdering:
    def test_sor_le_oneport_le_multiport(self, any_platform):
        name, platform, master = any_platform
        sor = solve_master_slave_send_or_receive(platform, master).throughput
        one = solve_master_slave(platform, master).throughput
        mp2 = solve_master_slave_multiport(platform, master, 2).throughput
        mp4 = solve_master_slave_multiport(platform, master, 4).throughput
        assert sor <= one <= mp2 <= mp4

    def test_sor_strictly_hurts_relays(self):
        """A pure forwarder must now time-share receiving and forwarding:
        under full overlap it relays 1 task/time-unit (both ports busy),
        under send-or-receive only 1/2."""
        from repro._rational import INF

        g = Platform("relay-chain")
        g.add_node("N0", 1)
        g.add_node("N1", INF)  # forwarder: every task crosses both ports
        g.add_node("N2", 1)
        g.add_edge("N0", "N1", 1)
        g.add_edge("N1", "N2", 1)
        one = solve_master_slave(g, "N0").throughput
        sor = solve_master_slave_send_or_receive(g, "N0").throughput
        assert one == 2
        assert sor == Fraction(3, 2)

    def test_multiport_unlocks_parallel_children(self):
        g = gen.star(3, master_w=1, worker_w=[1, 1, 1], link_c=[1, 1, 1])
        one = solve_master_slave(g, "M").throughput
        mp3 = solve_master_slave_multiport(g, "M", 3).throughput
        assert mp3 > one

    def test_multiport_caps_at_link_capacity(self):
        """Extra cards cannot push a single link beyond s_ij <= 1."""
        g = gen.star(1, master_w=1, worker_w=[1], link_c=[1])
        mp = solve_master_slave_multiport(g, "M", 8).throughput
        assert mp == 2  # master 1 + worker 1 (link saturated)

    def test_ports_validation(self, star4):
        with pytest.raises(ValueError):
            solve_master_slave_multiport(star4, "M", 0)

    def test_conservation_holds_in_variants(self, star4):
        sol = solve_master_slave_send_or_receive(star4, "M")
        sol.check_master_slave_conservation()
        sol2 = solve_master_slave_multiport(star4, "M", 2)
        sol2.check_master_slave_conservation()


class TestGreedyColoring:
    def test_disjoint_pairs_share_slice(self):
        slices = greedy_interval_coloring(
            [("a", "b", Fraction(1)), ("c", "d", Fraction(1))]
        )
        assert len(slices) == 1

    def test_node_conflicts_serialised(self):
        # b both receives and sends: under send-or-receive these conflict
        slices = greedy_interval_coloring(
            [("a", "b", Fraction(1)), ("b", "c", Fraction(1))]
        )
        assert len(slices) == 2

    def test_total_at_most_twice_load(self):
        edges = [
            ("a", "b", Fraction(2)), ("b", "c", Fraction(1)),
            ("c", "a", Fraction(1)), ("a", "c", Fraction(1)),
        ]
        slices = greedy_interval_coloring(edges)
        total = sum((d for _, d in slices), start=Fraction(0))
        load = {}
        for u, v, w in edges:
            load[u] = load.get(u, Fraction(0)) + w
            load[v] = load.get(v, Fraction(0)) + w
        assert total <= 2 * max(load.values())

    def test_cover_is_exact(self):
        edges = [("a", "b", Fraction(3)), ("b", "a", Fraction(2))]
        slices = greedy_interval_coloring(edges)
        covered = {}
        for batch, d in slices:
            for u, v in batch.items():
                covered[(u, v)] = covered.get((u, v), Fraction(0)) + d
        assert covered == {("a", "b"): Fraction(3), ("b", "a"): Fraction(2)}

    def test_schedule_length_measured(self):
        g = gen.chain(3, node_w=1, link_c=1)
        sol = solve_master_slave_send_or_receive(g, "N0")
        T, length = send_or_receive_schedule_length(sol)
        # the greedy orchestration must fit within the Shannon-type factor
        assert length <= 2 * T
