"""Tests for the Laplace graph (§6) and the affinity extension."""

from fractions import Fraction

import pytest

from repro._rational import INF
from repro.core.dag import TaskGraph, TaskGraphError, solve_dag_collection
from repro.platform import generators as gen
from repro.platform.graph import Platform


class TestLaplaceGraph:
    def test_shape(self):
        dag = TaskGraph.laplace(3)
        assert len(dag.real_types()) == 9
        assert dag.predecessors("l1_1") == ["l0_1", "l1_0"]
        assert dag.successors("l1_1") == ["l2_1", "l1_2"]

    def test_exponential_path_counts(self):
        """binomial(2n-2, n-1): the paper's 'exponential number of paths'."""
        for n, expected in ((2, 2), (3, 6), (4, 20), (5, 70), (7, 924)):
            dag = TaskGraph.laplace(n)
            assert dag.count_simple_paths(
                "l0_0", f"l{n - 1}_{n - 1}"
            ) == expected

    def test_single_cell(self):
        dag = TaskGraph.laplace(1)
        assert dag.real_types() == ["l0_0"]

    def test_validation(self):
        with pytest.raises(TaskGraphError):
            TaskGraph.laplace(0)

    def test_solves_on_platform(self, star4):
        dag = TaskGraph.laplace(2)
        sol = solve_dag_collection(star4, dag, "M")
        sol.verify()
        assert sol.throughput > 0

    def test_count_paths_unknown_type(self):
        dag = TaskGraph.laplace(2)
        with pytest.raises(TaskGraphError):
            dag.count_simple_paths("l0_0", "nope")


class TestAffinity:
    def platform(self):
        return gen.star(2, master_w=2, worker_w=[1, 1], link_c=[1, 1],
                        bidirectional=True)

    def test_default_matches_no_affinity(self):
        g = self.platform()
        dag = TaskGraph.single_task()
        plain = solve_dag_collection(g, dag, "M").throughput
        with_unit = solve_dag_collection(
            g, dag, "M", affinity={("W1", "task"): 1}
        ).throughput
        assert plain == with_unit

    def test_slowdown_multiplier(self):
        g = self.platform()
        dag = TaskGraph.single_task()
        slow = solve_dag_collection(
            g, dag, "M",
            affinity={("W1", "task"): 4, ("W2", "task"): 4,
                      ("M", "task"): 4},
        ).throughput
        plain = solve_dag_collection(g, dag, "M").throughput
        assert slow < plain

    def test_forbidden_type(self):
        g = self.platform()
        dag = TaskGraph.single_task()
        sol = solve_dag_collection(
            g, dag, "M", affinity={("W1", "task"): INF}
        )
        assert all(key != ("W1", "task") for key in sol.cons)
        sol.verify()

    def test_fully_forbidden_gives_zero(self):
        g = self.platform()
        dag = TaskGraph.single_task()
        sol = solve_dag_collection(
            g, dag, "M",
            affinity={(n, "task"): INF for n in g.nodes()},
        )
        assert sol.throughput == 0

    def test_specialisation_forces_file_traffic(self):
        """When consecutive stages live on different workers, their file
        must cross the platform — throughput drops below the colocated
        uniform value."""
        g = self.platform()
        dag = TaskGraph.chain([1, 1], [1])
        uniform = solve_dag_collection(g, dag, "M").throughput
        specialised = solve_dag_collection(
            g, dag, "M",
            affinity={
                ("W2", "t0"): INF, ("M", "t0"): INF,   # t0 only on W1
                ("W1", "t1"): INF, ("M", "t1"): INF,   # t1 only on W2
            },
        ).throughput
        assert 0 < specialised < uniform

    def test_verify_checks_affinity_budget(self):
        g = self.platform()
        dag = TaskGraph.single_task()
        sol = solve_dag_collection(
            g, dag, "M", affinity={("W1", "task"): 2}
        )
        sol.verify()
        # inflate a rate so the (affinity-weighted) CPU budget breaks
        key = ("W1", "task")
        if key in sol.cons:
            sol.cons[key] = sol.cons[key] * 3
            with pytest.raises(TaskGraphError):
                sol.verify()
