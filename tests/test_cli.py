"""CLI tests (direct invocation of repro.cli.main)."""

import json
from fractions import Fraction

import pytest

from repro.cli import _parse_generator_arg, main


class TestSolve:
    def test_solve_with_generator(self, capsys):
        rc = main(["solve", "--generator", "star", "--args", "3",
                   "--master", "M", "--periods", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "deficit" in out

    def test_solve_with_platform_file(self, tmp_path, capsys):
        rc = main(["export", "--generator", "chain", "--args", "3",
                   "-o", str(tmp_path / "p.json")])
        assert rc == 0
        rc = main(["solve", "--platform", str(tmp_path / "p.json"),
                   "--master", "N0"])
        assert rc == 0
        assert "steady-state" in capsys.readouterr().out

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["solve", "--generator", "nope", "--master", "M"])

    def test_missing_platform_source(self):
        with pytest.raises(SystemExit):
            main(["solve", "--master", "M"])


class TestGeneratorArgParsing:
    """Regression: ``int(a) if a.isdigit()`` mis-parsed "-1", "1.5", "3/2"."""

    def test_int_fraction_str_fallback(self):
        assert _parse_generator_arg("3") == 3
        assert isinstance(_parse_generator_arg("3"), int)
        assert _parse_generator_arg("-1") == -1
        assert isinstance(_parse_generator_arg("-1"), int)
        assert _parse_generator_arg("1.5") == Fraction(3, 2)
        assert _parse_generator_arg("3/2") == Fraction(3, 2)
        assert _parse_generator_arg("-2/3") == Fraction(-2, 3)
        assert _parse_generator_arg("M") == "M"
        assert _parse_generator_arg("1/0") == "1/0"  # not a rational

    def test_negative_count_reaches_generator_as_int(self):
        # star(-1) must hit the generator's own guard, not a str/int
        # comparison TypeError from an unparsed "-1"
        with pytest.raises(ValueError, match="at least one worker"):
            main(["export", "--generator", "star", "--args", "-1"])

    def test_fractional_weight_arg(self, capsys):
        rc = main(["export", "--generator", "star", "--args", "2", "3/2"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        master = next(n for n in data["nodes"] if n["name"] == "M")
        assert master["w"] == "3/2"


class TestCollectiveCommands:
    def test_scatter(self, capsys):
        rc = main(["scatter", "--generator", "paper_figure2_multicast",
                   "--source", "P0", "--targets", "P5", "P6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TP = 1/2" in out
        assert "commodity" in out

    def test_broadcast(self, capsys):
        rc = main(["broadcast", "--generator", "chain", "--args", "3",
                   "--source", "N0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LP bound = 1" in out
        assert "optimal" in out

    def test_multicast_bracket(self, capsys):
        rc = main(["multicast", "--generator", "paper_figure2_multicast",
                   "--source", "P0", "--targets", "P5", "P6"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "3/4" in out
        assert "NOT achievable" in out


class TestProblemsCommand:
    def test_list_shows_registry_metadata(self, capsys):
        rc = main(["problems"])
        assert rc == 0
        out = capsys.readouterr().out
        for problem in ("master-slave", "scatter", "gather", "dag",
                        "send-or-receive"):
            assert problem in out
        assert "warm-resolve" in out
        assert "reconstructs-schedule" in out
        assert "10 problems registered" in out

    def test_json_output_matches_registry(self, capsys):
        from repro.problems import registered_problems

        rc = main(["problems", "--json"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert set(data) == set(registered_problems())
        assert data["gather"]["capabilities"]["reconstructs_schedule"] is True
        assert data["scatter"]["capabilities"]["warm_resolve"] is True
        assert any(f["name"] == "sink" and f["required"]
                   for f in data["gather"]["fields"])

    def test_check_solves_every_problem(self, capsys):
        rc = main(["problems", "--check"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "registry check OK" in out
        assert out.count(" OK ") == 10


class TestFiguresAndExport:
    def test_figures(self, capsys):
        rc = main(["figures"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 3(d)" in out
        assert "occupation 2 > 1" in out

    def test_export_stdout(self, capsys):
        rc = main(["export", "--generator", "star", "--args", "2"])
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert len(data["nodes"]) == 3

    def test_export_seed_forwarded(self, capsys):
        rc = main(["export", "--generator", "random_connected",
                   "--args", "5", "--seed", "7"])
        assert rc == 0
        first = capsys.readouterr().out
        main(["export", "--generator", "random_connected",
              "--args", "5", "--seed", "7"])
        second = capsys.readouterr().out
        assert first == second
