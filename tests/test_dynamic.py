"""Dynamic steady-state tests (section 5.5)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.master_slave import solve_master_slave
from repro.dynamic.adaptive import realized_rate, run_adaptive
from repro.dynamic.autonomous import autonomous_throughput, subtree_capacity
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError
from repro.platform.monitoring import SlidingWindowPredictor, TimeVaryingPlatform


class TestAutonomous:
    def test_equals_lp_on_stars(self):
        g = gen.star(5, master_w=3, worker_w=[1, 1, 2, 5, 9],
                     link_c=[2, 1, 1, 3, 1])
        assert autonomous_throughput(g, "M") == (
            solve_master_slave(g, "M").throughput
        )

    def test_equals_lp_on_binary_trees(self):
        for seed in (1, 2, 3, 4, 5):
            g = gen.binary_tree(3, seed=seed)
            assert autonomous_throughput(g, "T0") == (
                solve_master_slave(g, "T0").throughput
            ), f"seed {seed}"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 6), st.integers(1, 6)),
            min_size=1, max_size=6,
        )
    )
    def test_equals_lp_on_random_stars(self, workers):
        ws = [w for w, _ in workers]
        cs = [c for _, c in workers]
        g = gen.star(len(workers), master_w=2, worker_w=ws, link_c=cs)
        assert autonomous_throughput(g, "M") == (
            solve_master_slave(g, "M").throughput
        )

    def test_reports_are_consistent(self):
        g = gen.binary_tree(2, seed=7)
        reports = subtree_capacity(g, "T0")
        for node, rep in reports.items():
            total = rep.own_rate + sum(
                rep.child_rates.values(), start=Fraction(0)
            )
            assert total == rep.capacity
            busy = sum(
                (rate * g.c(node, ch)
                 for ch, rate in rep.child_rates.items()),
                start=Fraction(0),
            )
            assert busy <= 1

    def test_non_tree_rejected(self, grid33):
        with pytest.raises(PlatformError):
            subtree_capacity(grid33, "G0_0")


class TestRealizedRate:
    def test_perfect_estimate_realizes_plan(self, star4):
        plan = solve_master_slave(star4, "M")
        achieved = realized_rate(star4, star4, "M", plan)
        assert achieved == plan.throughput

    def test_slower_truth_reduces_rate(self, star4):
        plan = solve_master_slave(star4, "M")
        slower = star4.scale(compute=2, comm=2)
        achieved = realized_rate(star4, slower, "M", plan)
        assert achieved < plan.throughput

    def test_faster_truth_never_exceeds_plan(self, star4):
        """Extra capacity is wasted without replanning — the motivation
        for the adaptive protocol."""
        plan = solve_master_slave(star4, "M")
        faster = star4.scale(compute=Fraction(1, 2), comm=Fraction(1, 2))
        achieved = realized_rate(star4, faster, "M", plan)
        assert achieved <= solve_master_slave(faster, "M").throughput


class TestAdaptiveProtocol:
    @pytest.mark.parametrize("seed", [7, 21, 99])
    def test_oracle_dominates_all(self, seed):
        base = gen.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                        link_c=[1, 1, 2, 3])
        results = {}
        for strategy in ("static", "adaptive", "oracle"):
            tv = TimeVaryingPlatform(base, drift=0.3, seed=seed)
            results[strategy] = run_adaptive(tv, "M", epochs=6,
                                             strategy=strategy)
        assert results["oracle"].mean_efficiency == 1
        assert results["adaptive"].total_achieved <= (
            results["oracle"].total_achieved
        )
        assert results["static"].total_achieved <= (
            results["oracle"].total_achieved
        )

    def test_adaptive_beats_static_under_drift(self):
        """Averaged over seeds, replanning wins (§5.5's whole point)."""
        base = gen.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                        link_c=[1, 1, 2, 3])
        adaptive_total = static_total = Fraction(0)
        for seed in (3, 7, 21, 42, 99):
            tv_a = TimeVaryingPlatform(base, drift=0.35, seed=seed)
            adaptive_total += run_adaptive(
                tv_a, "M", epochs=6, strategy="adaptive"
            ).total_achieved
            tv_s = TimeVaryingPlatform(base, drift=0.35, seed=seed)
            static_total += run_adaptive(
                tv_s, "M", epochs=6, strategy="static"
            ).total_achieved
        assert adaptive_total > static_total

    def test_with_predictor(self):
        base = gen.star(3, worker_w=[1, 2, 3], link_c=[1, 1, 2])
        tv = TimeVaryingPlatform(base, drift=0.25, seed=11)
        res = run_adaptive(
            tv, "M", epochs=5, strategy="adaptive",
            predictor=SlidingWindowPredictor(window=2),
        )
        assert 0 < res.mean_efficiency <= 1

    def test_epoch_count_validated(self, star4):
        tv = TimeVaryingPlatform(star4, seed=1)
        with pytest.raises(ValueError):
            run_adaptive(tv, "M", epochs=0)


class TestTimeVaryingPlatform:
    def test_multipliers_bounded(self, star4):
        tv = TimeVaryingPlatform(star4, drift=0.5, seed=2,
                                 bounds=(0.5, 2.0))
        for _ in range(30):
            snap = tv.advance()
            for node in snap.compute_nodes():
                ratio = snap.w(node) / star4.w(node)
                assert Fraction(1, 2) <= ratio <= 2

    def test_snapshot_preserves_topology(self, grid33):
        tv = TimeVaryingPlatform(grid33, seed=3)
        snap = tv.advance()
        assert snap.num_nodes == grid33.num_nodes
        assert snap.num_edges == grid33.num_edges

    def test_deterministic_under_seed(self, star4):
        a = TimeVaryingPlatform(star4, seed=5)
        b = TimeVaryingPlatform(star4, seed=5)
        for _ in range(4):
            assert a.advance().describe() == b.advance().describe()

    def test_history_grows(self, star4):
        tv = TimeVaryingPlatform(star4, seed=1)
        tv.advance()
        tv.advance()
        assert len(tv.history()) == 3  # epoch 0 + two advances

    def test_drift_validation(self, star4):
        with pytest.raises(ValueError):
            TimeVaryingPlatform(star4, drift=1.5)


class TestPredictor:
    def test_mean_of_window(self, star4):
        pred = SlidingWindowPredictor(window=2)
        pred.observe(star4)
        pred.observe(star4.scale(compute=3))
        forecast = pred.predict(star4)
        # mean of w and 3w = 2w
        assert forecast.w("W1") == star4.w("W1") * 2

    def test_unobserved_defaults_to_template(self, star4):
        pred = SlidingWindowPredictor()
        forecast = pred.predict(star4)
        assert forecast.w("W1") == star4.w("W1")
