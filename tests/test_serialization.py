"""Round-trip tests for platform and schedule serialisation."""

import json
from fractions import Fraction

import pytest

from repro._rational import INF
from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError
from repro.platform.serialization import (
    platform_from_dict,
    platform_from_json,
    platform_to_dict,
    platform_to_json,
    schedule_from_json,
    schedule_to_json,
)
from repro.schedule.reconstruction import reconstruct_schedule


class TestPlatformRoundTrip:
    def test_round_trip_preserves_structure(self, any_platform):
        name, platform, master = any_platform
        clone = platform_from_json(platform_to_json(platform))
        assert clone.describe() == platform.describe()

    def test_exact_fractions_survive(self):
        g = Platform("fr")
        g.add_node("A", Fraction(1, 3))
        g.add_node("B", Fraction(22, 7))
        g.add_edge("A", "B", Fraction(355, 113))
        clone = platform_from_json(platform_to_json(g))
        assert clone.w("A") == Fraction(1, 3)
        assert clone.c("A", "B") == Fraction(355, 113)

    def test_forwarders_survive(self):
        g = Platform("fw")
        g.add_node("M", 1)
        g.add_node("F", INF)
        g.add_edge("M", "F", 1)
        clone = platform_from_json(platform_to_json(g))
        assert not clone.node("F").can_compute

    def test_solutions_identical_after_round_trip(self, star4):
        clone = platform_from_json(platform_to_json(star4))
        assert solve_master_slave(clone, "M").throughput == (
            solve_master_slave(star4, "M").throughput
        )

    def test_malformed_data_rejected(self):
        with pytest.raises(PlatformError):
            platform_from_dict({"nodes": "nope"})
        with pytest.raises(PlatformError):
            platform_from_dict({"nodes": [], "edges": [
                {"src": "A", "dst": "B", "c": "1"}
            ]})

    def test_json_is_valid(self, star4):
        data = json.loads(platform_to_json(star4))
        assert {"name", "nodes", "edges"} <= set(data)


class TestScheduleRoundTrip:
    def test_master_slave_schedule(self, star4):
        sol = solve_master_slave(star4, "M")
        sched = reconstruct_schedule(sol)
        clone = schedule_from_json(schedule_to_json(sched))
        assert clone.period == sched.period
        assert clone.throughput == sched.throughput
        assert clone.compute == sched.compute
        assert clone.messages == sched.messages
        assert len(clone.slices) == len(sched.slices)
        clone.validate()
        clone.check_message_counts()

    def test_routes_survive(self, fig2):
        from repro.core.scatter import solve_scatter

        sol = solve_scatter(fig2, "P0", ["P5", "P6"])
        sched = reconstruct_schedule(sol)
        clone = schedule_from_json(schedule_to_json(sched))
        assert clone.routes == sched.routes

    def test_clone_runs_in_simulator(self, star4):
        from repro.simulator.periodic_runner import PeriodicRunner

        sol = solve_master_slave(star4, "M")
        sched = reconstruct_schedule(sol)
        clone = schedule_from_json(schedule_to_json(sched))
        original = PeriodicRunner(sched).run(10)
        replay = PeriodicRunner(clone).run(10)
        assert original.total_completed == replay.total_completed
