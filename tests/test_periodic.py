"""PeriodicSchedule structural validation tests."""

from fractions import Fraction

import pytest

from repro.platform import generators as gen
from repro.schedule.periodic import CommSlice, PeriodicSchedule, ScheduleError


def make_schedule(star4, slices, compute=None, messages=None, period=4):
    return PeriodicSchedule(
        platform=star4,
        problem="master-slave",
        period=Fraction(period),
        throughput=Fraction(1),
        slices=slices,
        compute=compute or {},
        messages=messages or {},
        source="M",
    )


class TestCommSlice:
    def test_end(self):
        s = CommSlice(Fraction(1), Fraction(2), {"M": "W1"})
        assert s.end == 3


class TestValidation:
    def test_valid_empty(self, star4):
        make_schedule(star4, []).validate()

    def test_valid_single_slice(self, star4):
        sched = make_schedule(
            star4,
            [CommSlice(Fraction(0), Fraction(1), {"M": "W1"})],
            messages={("M", "W1"): 1},
        )
        sched.validate()
        sched.check_message_counts()

    def test_overlapping_slices_rejected(self, star4):
        sched = make_schedule(star4, [
            CommSlice(Fraction(0), Fraction(2), {"M": "W1"}),
            CommSlice(Fraction(1), Fraction(1), {"M": "W2"}),
        ])
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_slice_beyond_period_rejected(self, star4):
        sched = make_schedule(star4, [
            CommSlice(Fraction(3), Fraction(2), {"M": "W1"}),
        ])
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_non_matching_slice_rejected(self, star4):
        sched = make_schedule(star4, [
            CommSlice(Fraction(0), Fraction(1), {"M": "W1", "W1": "W1"}),
        ])
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_missing_edge_rejected(self, star4):
        sched = make_schedule(star4, [
            CommSlice(Fraction(0), Fraction(1), {"W1": "W2"}),
        ])
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_compute_overflow_rejected(self, star4):
        # W3 has w = 3; 2 tasks need 6 > period 4
        sched = make_schedule(star4, [], compute={"W3": 2})
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_forwarder_compute_rejected(self):
        from repro._rational import INF
        from repro.platform.graph import Platform

        g = Platform("f")
        g.add_node("M", 1)
        g.add_node("F", INF)
        g.add_edge("M", "F", 1)
        sched = PeriodicSchedule(
            platform=g, problem="master-slave", period=Fraction(4),
            throughput=Fraction(1), slices=[], compute={"F": 1}, source="M",
        )
        with pytest.raises(ScheduleError):
            sched.validate()

    def test_message_count_mismatch_detected(self, star4):
        sched = make_schedule(
            star4,
            [CommSlice(Fraction(0), Fraction(1), {"M": "W1"})],
            messages={("M", "W1"): 3},
        )
        with pytest.raises(ScheduleError):
            sched.check_message_counts()


class TestQueries:
    def test_comm_time(self, star4):
        sched = make_schedule(star4, [
            CommSlice(Fraction(0), Fraction(1), {"M": "W1"}),
            CommSlice(Fraction(1), Fraction(2), {"M": "W1"}),
        ])
        assert sched.comm_time("M", "W1") == 3
        assert sched.comm_time("M", "W2") == 0

    def test_port_busy(self, star4):
        sched = make_schedule(star4, [
            CommSlice(Fraction(0), Fraction(1), {"M": "W1"}),
            CommSlice(Fraction(1), Fraction(1), {"M": "W2"}),
        ])
        send, recv = sched.port_busy("M")
        assert send == 2 and recv == 0
        send, recv = sched.port_busy("W1")
        assert send == 0 and recv == 1

    def test_tasks_per_period(self, star4):
        sched = make_schedule(star4, [], compute={"M": 2, "W1": 1})
        assert sched.tasks_per_period() == 3

    def test_describe(self, star4):
        sched = make_schedule(
            star4,
            [CommSlice(Fraction(0), Fraction(1), {"M": "W1"})],
            compute={"M": 2},
        )
        text = sched.describe()
        assert "period T = 4" in text
        assert "M->W1" in text
