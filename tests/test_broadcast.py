"""Broadcast tests: the max-rule LP bound is ACHIEVABLE (§4.3 via [5]).

The headline theorem: for series of broadcasts — contrary to multicast —
the optimistic LP bound is attained by an arborescence packing.  We assert
``packing == LP bound`` exactly on every platform small enough for
exhaustive enumeration.
"""

from fractions import Fraction

import pytest

from repro.core.broadcast import (
    broadcast_lp_bound,
    edmonds_cut_bound,
    solve_broadcast,
    solve_reduce,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError


def broadcast_platforms():
    return [
        ("chain", gen.chain(4, link_c=1), "N0"),
        ("fig2", gen.paper_figure2_multicast(), "P0"),
        ("grid2x3", gen.grid2d(2, 3, seed=1), "G0_0"),
        ("star", gen.star(3, worker_w=[1, 1, 1], link_c=[1, 2, 2]), "M"),
        ("random6", gen.random_connected(6, seed=17,
                                         extra_edge_prob=0.15), "R0"),
        ("tree", gen.binary_tree(2, seed=9), "T0"),
    ]


class TestAchievability:
    @pytest.mark.parametrize(
        "name,platform,source", broadcast_platforms(),
        ids=[p[0] for p in broadcast_platforms()],
    )
    def test_packing_attains_lp_bound(self, name, platform, source):
        sol = solve_broadcast(platform, source)
        assert sol.exhaustive, "platform should be small enough"
        assert sol.achieved == sol.lp_bound
        assert sol.optimal

    def test_chain_throughput_value(self):
        g = gen.chain(4, link_c=1)
        sol = solve_broadcast(g, "N0")
        # pipeline: every node sends/receives once per instance at c=1
        assert sol.lp_bound == 1

    def test_star_value(self):
        g = gen.star(3, worker_w=[1, 1, 1], link_c=[1, 2, 2])
        sol = solve_broadcast(g, "M")
        # no worker-to-worker links: M sends every instance 3 times
        assert sol.lp_bound == Fraction(1, 5)

    def test_packing_rates_positive_and_spanning(self, fig2):
        sol = solve_broadcast(fig2, "P0")
        nodes = set(fig2.nodes()) - {"P0"}
        for tree, rate in sol.packing.items():
            assert rate > 0
            heads = {v for (_, v) in tree}
            assert heads == nodes  # spanning arborescence

    def test_period_is_integer(self, fig2):
        sol = solve_broadcast(fig2, "P0")
        T = sol.period()
        for rate in sol.packing.values():
            assert (rate * T).denominator == 1


class TestBounds:
    def test_edmonds_upper_bounds_lp_on_unit_costs(self):
        """With all c = 1 the one-port model is weaker than edge capacity,
        so LP <= min-cut bound."""
        g = gen.chain(4, link_c=1)
        assert broadcast_lp_bound(g, "N0") <= edmonds_cut_bound(g, "N0")

    def test_edmonds_single_node_raises(self):
        g = Platform("solo")
        g.add_node("A", 1)
        with pytest.raises(PlatformError):
            edmonds_cut_bound(g, "A")

    def test_lp_bound_monotone_in_bandwidth(self):
        g1 = gen.chain(3, link_c=2)
        g2 = gen.chain(3, link_c=1)
        assert broadcast_lp_bound(g1, "N0") <= broadcast_lp_bound(g2, "N0")

    def test_broadcast_needs_receiver(self):
        g = Platform("solo")
        g.add_node("A", 1)
        with pytest.raises(PlatformError):
            broadcast_lp_bound(g, "A")


class TestReduce:
    def test_reduce_mirrors_broadcast(self):
        g = gen.grid2d(2, 2, seed=4)  # symmetric bidirectional grid
        b = solve_broadcast(g, "G0_0")
        r = solve_reduce(g, "G0_0")
        assert r.lp_bound == b.lp_bound
        assert r.achieved == b.achieved

    def test_reduce_trees_point_into_root(self):
        g = gen.grid2d(2, 2, seed=4)
        r = solve_reduce(g, "G0_0")
        for tree, rate in r.packing.items():
            # reversed arborescence: the root receives, never relays out
            assert all(g.has_edge(u, v) for (u, v) in tree)
            heads = [u for (u, _) in tree]  # senders
            assert "G0_0" not in heads

    def test_reduce_on_asymmetric_chain(self):
        g = Platform("updown")
        for k in range(3):
            g.add_node(f"N{k}", 1)
        g.add_edge("N1", "N0", 2)  # towards the root
        g.add_edge("N2", "N1", 2)
        r = solve_reduce(g, "N0")
        assert r.lp_bound == Fraction(1, 2)
        assert r.achieved == Fraction(1, 2)
