"""Shared fixtures: a menagerie of platforms used across the test suite."""

from __future__ import annotations

import pytest

from repro.platform import generators as gen


@pytest.fixture
def star4():
    """Heterogeneous star: the closed-form oracle platform."""
    return gen.star(4, master_w=2, worker_w=[1, 2, 3, 4], link_c=[1, 1, 2, 3])


@pytest.fixture
def fig1():
    """The paper's Figure 1 example platform."""
    return gen.paper_figure1()


@pytest.fixture
def fig2():
    """The paper's Figure 2 multicast counterexample platform."""
    return gen.paper_figure2_multicast()


@pytest.fixture
def grid33():
    return gen.grid2d(3, 3, seed=3)


@pytest.fixture
def tree3():
    return gen.binary_tree(3, seed=5)


@pytest.fixture
def rand8():
    return gen.random_connected(8, seed=42)


def platform_family():
    """(name, platform, master) triples covering every generator family."""
    return [
        ("star", gen.star(4, master_w=2, worker_w=[1, 2, 3, 4],
                          link_c=[1, 1, 2, 3]), "M"),
        ("fig1", gen.paper_figure1(), "P1"),
        ("chain", gen.chain(4, node_w=2, link_c=1), "N0"),
        ("tree", gen.binary_tree(2, seed=7), "T0"),
        ("grid", gen.grid2d(2, 3, seed=1), "G0_0"),
        ("random", gen.random_connected(7, seed=13), "R0"),
        ("forwarders", gen.random_connected(7, seed=99, forwarder_prob=0.4),
         "R0"),
        ("clustered", gen.clustered(2, 3, seed=21), "C0_0"),
    ]


@pytest.fixture(params=platform_family(), ids=lambda t: t[0])
def any_platform(request):
    return request.param
