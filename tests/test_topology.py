"""Topology-discovery tests (section 5.3)."""

from fractions import Fraction

import pytest

from repro.core.master_slave import ntask
from repro.platform import generators as gen
from repro.platform.graph import Platform
from repro.platform.topology import (
    alnem_graph_view,
    complete_graph_view,
    env_tree_view,
    probe_cost,
    probe_path,
    probes_interfere,
    view_quality,
)


class TestProbes:
    def test_probe_cost_is_shortest_path(self, fig2):
        assert probe_cost(fig2, "P0", "P5") == 2  # P0->P1->P5
        assert probe_cost(fig2, "P0", "P4") == 4  # P0->Px->P3->P4(c=2)

    def test_probe_unreachable(self, fig2):
        assert probe_cost(fig2, "P5", "P0") is None

    def test_interference_shared_edge(self, fig2):
        # both routes to P3 start at P0; the shared sender interferes
        assert probes_interfere(fig2, ("P0", "P5"), ("P0", "P6"))

    def test_no_interference_disjoint(self):
        g = Platform("disj")
        for n in ("A", "B", "C", "D"):
            g.add_node(n, 1)
        g.add_edge("A", "B", 1)
        g.add_edge("C", "D", 1)
        assert not probes_interfere(g, ("A", "B"), ("C", "D"))


class TestViews:
    def test_env_tree_is_subgraph_with_true_costs(self, grid33):
        tree = env_tree_view(grid33, "G0_0")
        assert tree.num_edges == tree.num_nodes - 1
        for spec in tree.edges():
            assert grid33.has_edge(spec.src, spec.dst)

    def test_env_tree_reaches_everyone(self, grid33):
        tree = env_tree_view(grid33, "G0_0")
        assert tree.is_connected_from("G0_0")

    def test_alnem_superset_of_env_tree(self, grid33):
        tree = env_tree_view(grid33, "G0_0")
        alnem = alnem_graph_view(grid33)
        for spec in tree.edges():
            assert alnem.has_edge(spec.src, spec.dst)

    def test_alnem_subgraph_of_truth(self, grid33):
        alnem = alnem_graph_view(grid33)
        for spec in alnem.edges():
            assert grid33.has_edge(spec.src, spec.dst)
            assert grid33.c(spec.src, spec.dst) == spec.c

    def test_complete_view_costs_are_path_costs(self, fig2):
        complete = complete_graph_view(fig2)
        assert complete.c("P0", "P4") == 4

    def test_view_ordering_on_many_platforms(self):
        """env-tree <= alnem <= truth (subgraph monotonicity)."""
        for seed in (1, 5, 9, 13):
            g = gen.random_connected(8, seed=seed)
            q = view_quality(g, "R0")
            assert q["env-tree"] <= q["alnem"] <= q["truth"], f"seed {seed}"

    def test_multipath_platform_hurts_tree_view(self):
        """A platform whose extra capacity lives in parallel routes makes
        the tree view strictly pessimistic."""
        g = Platform("multi")
        g.add_node("M", 1)
        for n in ("A", "B", "W1", "W2"):
            g.add_node(n, 1)
        # two relays, each reaching both workers; tree keeps one parent
        g.add_edge("M", "A", 1)
        g.add_edge("M", "B", 1)
        g.add_edge("A", "W1", 1)
        g.add_edge("A", "W2", 2)
        g.add_edge("B", "W2", 1)
        g.add_edge("B", "W1", 2)
        q = view_quality(g, "M")
        assert q["env-tree"] <= q["truth"]
        assert q["alnem"] >= q["env-tree"]

    def test_scheduling_on_view_is_safe(self, grid33):
        """A plan made on the (pessimistic) tree view executes at its
        planned rate on the true platform — the ENV safety property."""
        from repro.core.master_slave import solve_master_slave
        from repro.dynamic.adaptive import realized_rate

        tree = env_tree_view(grid33, "G0_0")
        plan = solve_master_slave(tree, "G0_0")
        achieved = realized_rate(tree, grid33, "G0_0", plan)
        assert achieved == plan.throughput
