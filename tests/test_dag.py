"""DAG-collection tests (section 4.2's mixed data/task parallelism)."""

from fractions import Fraction

import pytest

from repro.core.dag import BEGIN, TaskGraph, TaskGraphError, solve_dag_collection
from repro.core.master_slave import solve_master_slave
from repro.platform import generators as gen
from repro.platform.graph import Platform


class TestTaskGraphConstruction:
    def test_duplicate_type(self):
        dag = TaskGraph()
        dag.add_type("a", 1)
        with pytest.raises(TaskGraphError):
            dag.add_type("a", 2)

    def test_unknown_type_in_file(self):
        dag = TaskGraph()
        dag.add_type("a", 1)
        with pytest.raises(TaskGraphError):
            dag.add_file("a", "b", 1)

    def test_cycle_detected(self):
        dag = TaskGraph()
        dag.add_type("a", 1)
        dag.add_type("b", 1)
        dag.add_file("a", "b", 1)
        with pytest.raises(TaskGraphError):
            dag.add_file("b", "a", 1)

    def test_negative_work(self):
        dag = TaskGraph()
        with pytest.raises(TaskGraphError):
            dag.add_type("a", -1)

    def test_zero_size_file(self):
        dag = TaskGraph()
        dag.add_type("a", 1)
        dag.add_type("b", 1)
        with pytest.raises(TaskGraphError):
            dag.add_file("a", "b", 0)

    def test_roots_and_neighbours(self):
        dag = TaskGraph.chain([1, 2, 3], [1, 1])
        assert dag.predecessors("t1") == ["t0"]
        assert dag.successors("t1") == ["t2"]
        assert BEGIN in dag.types

    def test_double_anchor_rejected(self):
        dag = TaskGraph.single_task()
        with pytest.raises(TaskGraphError):
            dag.anchor_at_master()

    def test_fork_join_shape(self):
        dag = TaskGraph.fork_join(3)
        assert len(dag.real_types()) == 5  # fork + 3 branches + join
        assert dag.predecessors("join") == [f"branch{b}" for b in range(3)]


class TestDegenerateEqualsSSMS:
    """A single unit-work task with a unit input file IS master-slave."""

    def test_star(self, star4):
        dag = TaskGraph.single_task(work=1, input_size=1)
        ds = solve_dag_collection(star4, dag, "M")
        ms = solve_master_slave(star4, "M")
        assert ds.throughput == ms.throughput

    def test_fig1(self, fig1):
        dag = TaskGraph.single_task()
        ds = solve_dag_collection(fig1, dag, "P1")
        assert ds.throughput == solve_master_slave(fig1, "P1").throughput

    def test_scaled_task(self, star4):
        """work=2 halves every node's rate: throughput exactly halves
        relative to the same LP with unit work only when communication
        is not binding; in general it is at most half... assert the
        trivially valid direction."""
        heavy = solve_dag_collection(
            star4, TaskGraph.single_task(work=2, input_size=1), "M"
        )
        light = solve_dag_collection(
            star4, TaskGraph.single_task(work=1, input_size=1), "M"
        )
        assert heavy.throughput <= light.throughput


class TestPipelines:
    def test_chain_on_chain(self):
        g = gen.chain(3, node_w=1, link_c=1)
        dag = TaskGraph.chain([1, 1, 1], [1, 1])
        sol = solve_dag_collection(g, dag, "N0")
        assert sol.throughput == 1  # perfect pipeline
        sol.verify()

    def test_chain_collapses_on_single_node(self):
        g = Platform("solo")
        g.add_node("M", 1)
        dag = TaskGraph.chain([1, 2], [1])
        sol = solve_dag_collection(g, dag, "M")
        # one node does all 3 units of work per instance
        assert sol.throughput == Fraction(1, 3)

    def test_fork_join_throughput(self, star4):
        dag = TaskGraph.fork_join(2, branch_work=2)
        sol = solve_dag_collection(star4, dag, "M")
        sol.verify()
        assert sol.throughput > 0
        total_work = sum(dag.types.values())
        cap = sum(
            (Fraction(1) / star4.node(n).w for n in star4.compute_nodes()),
            start=Fraction(0),
        )
        assert sol.throughput <= cap / total_work

    def test_heavy_files_throttle(self):
        g = gen.chain(2, node_w=1, link_c=1)
        cheap = TaskGraph.chain([1, 1], [1])
        bulky = TaskGraph.chain([1, 1], [10])
        tp_cheap = solve_dag_collection(g, cheap, "N0").throughput
        tp_bulky = solve_dag_collection(g, bulky, "N0").throughput
        assert tp_bulky <= tp_cheap

    def test_forwarders_cannot_execute(self):
        from repro._rational import INF

        g = Platform("fw")
        g.add_node("M", 1)
        g.add_node("F", INF)
        g.add_node("W", 1)
        g.add_edge("M", "F", 1)
        g.add_edge("F", "W", 1)
        dag = TaskGraph.single_task()
        sol = solve_dag_collection(g, dag, "M")
        assert all(n != "F" for (n, t) in sol.cons)
        assert sol.throughput == 2

    def test_requires_anchor(self, star4):
        dag = TaskGraph()
        dag.add_type("t", 1)
        with pytest.raises(TaskGraphError):
            solve_dag_collection(star4, dag, "M")

    def test_verify_catches_tampering(self, star4):
        dag = TaskGraph.single_task()
        sol = solve_dag_collection(star4, dag, "M")
        key = next(iter(sol.cons))
        sol.cons[key] = sol.cons[key] * 2
        with pytest.raises(TaskGraphError):
            sol.verify()
