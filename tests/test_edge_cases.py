"""Edge-case and robustness tests across modules."""

from fractions import Fraction

import pytest

from repro._rational import INF
from repro.core.master_slave import solve_master_slave
from repro.core.scatter import solve_scatter
from repro.lp import InfeasibleError, LinearProgram, lp_sum
from repro.platform import generators as gen
from repro.platform.graph import Platform, PlatformError
from repro.schedule.reconstruction import reconstruct_schedule


class TestDegeneratePlatforms:
    def test_two_node_minimal(self):
        g = Platform("pair")
        g.add_node("M", 1)
        g.add_node("W", 1)
        g.add_edge("M", "W", 1)
        sol = solve_master_slave(g, "M")
        assert sol.throughput == 2
        sched = reconstruct_schedule(sol)
        assert sched.period == 1

    def test_all_forwarders_except_master(self):
        g = Platform("lonely")
        g.add_node("M", 2)
        for k in range(3):
            g.add_node(f"F{k}", INF)
            g.add_edge("M", f"F{k}", 1)
        sol = solve_master_slave(g, "M")
        assert sol.throughput == Fraction(1, 2)  # nobody else can compute
        assert all(v == 0 for v in sol.s.values())

    def test_very_slow_everything(self):
        g = gen.star(2, master_w=1000, worker_w=[999, 1001],
                     link_c=[500, 700])
        sol = solve_master_slave(g, "M")
        sol.verify()
        sched = reconstruct_schedule(sol)
        assert sched.throughput == sol.throughput

    def test_extreme_cost_ratios(self):
        """Mixed tiny and huge rationals must not break exactness."""
        g = Platform("extreme")
        g.add_node("M", Fraction(1, 1000))
        g.add_node("W", Fraction(1000))
        g.add_edge("M", "W", Fraction(1, 997))
        sol = solve_master_slave(g, "M")
        sol.verify()
        assert sol.throughput == 1000 + Fraction(1, 1000)

    def test_dense_complete_graph(self):
        g = Platform("K5")
        for k in range(5):
            g.add_node(f"N{k}", k + 1)
        for a in range(5):
            for b in range(5):
                if a != b:
                    g.add_edge(f"N{a}", f"N{b}", 1)
        sol = solve_master_slave(g, "N0")
        sol.verify()
        sched = reconstruct_schedule(sol)
        assert len(sched.slices) <= g.num_edges + 2 * g.num_nodes


class TestScatterEdgeCases:
    def test_unreachable_target_zero_throughput(self):
        g = Platform("island")
        g.add_node("S", 1)
        g.add_node("T", 1)
        g.add_node("X", 1)
        g.add_edge("S", "X", 1)  # T unreachable
        sol = solve_scatter(g, "S", ["T"])
        assert sol.throughput == 0

    def test_target_is_relay_for_other_target(self):
        g = gen.chain(3, link_c=1)
        sol = solve_scatter(g, "N0", ["N1", "N2"])
        # N1 receives its own messages AND forwards N2's
        assert sol.send[("N0", "N1", "N1")] > 0
        assert sol.send[("N0", "N1", "N2")] > 0
        recv_busy = sol.s[("N0", "N1")]
        assert recv_busy == 1  # saturated first hop


class TestLPEdgeCases:
    def test_empty_feasible_region_via_bounds(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=5, hi=10)
        y = lp.variable("y", lo=0, hi=1)
        lp.add_constraint(x + y <= 3)
        lp.maximize(x)
        with pytest.raises(InfeasibleError):
            lp.solve()

    def test_variable_fixed_by_bounds(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=3, hi=3)
        y = lp.variable("y", lo=0)
        lp.add_constraint(y <= x)
        lp.maximize(y)
        assert lp.solve().objective == 3

    def test_many_redundant_rows(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0, hi=1)
        for _ in range(20):
            lp.add_constraint(x <= 1)
        lp.maximize(x)
        assert lp.solve().objective == 1

    def test_negative_rhs_normalisation(self):
        lp = LinearProgram()
        x = lp.variable("x")
        lp.add_constraint(-x <= -2)  # i.e. x >= 2
        lp.minimize(x)
        assert lp.solve().objective == 2

    def test_scipy_backend_on_equality_system(self):
        lp = LinearProgram()
        x = lp.variable("x", lo=0)
        y = lp.variable("y", lo=0)
        lp.add_constraint(x + y == 4)
        lp.add_constraint(x - y == 2)
        lp.maximize(x)
        sol = lp.solve(backend="scipy")
        assert abs(float(sol.objective) - 3.0) < 1e-7


class TestReconstructionEdgeCases:
    def test_no_communication_schedule(self):
        g = Platform("solo")
        g.add_node("M", 3)
        sol = solve_master_slave(g, "M")
        sched = reconstruct_schedule(sol)
        assert sched.slices == []
        assert sched.tasks_per_period() == 1
        assert sched.period == 3

    def test_saturated_single_edge(self):
        g = Platform("tight")
        g.add_node("M", INF)
        g.add_node("W", 1)
        g.add_edge("M", "W", 1)
        sol = solve_master_slave(g, "M")
        sched = reconstruct_schedule(sol)
        # the single link is busy the entire period
        assert sched.comm_time("M", "W") == sched.period
        send, recv = sched.port_busy("M")
        assert send == sched.period
