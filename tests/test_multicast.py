"""Multicast tests: the §4.3 counterexample and the bound bracket.

The paper's central negative result: the optimistic (max-rule) LP bound of
1 multicast per time-unit on the Figure 2 platform cannot be realised; the
true optimum is 3/4 and the pessimistic (sum-rule) bound is 1/2.
"""

from fractions import Fraction

import pytest

from repro.core.multicast import (
    analyze_figure2,
    best_single_tree,
    multicast_bounds,
    solve_multicast,
)
from repro.platform import generators as gen


@pytest.fixture(scope="module")
def fig2_report():
    return analyze_figure2()


class TestFigure2Counterexample:
    def test_max_lp_is_one(self, fig2_report):
        """The unachievable bound: one multicast per time-unit."""
        assert fig2_report.max_lp == 1

    def test_sum_lp_is_half(self, fig2_report):
        """Scatter-style accounting: the pessimistic bound."""
        assert fig2_report.sum_lp == Fraction(1, 2)

    def test_achievable_is_three_quarters(self, fig2_report):
        """Exhaustive Steiner-tree packing: the true optimum."""
        assert fig2_report.achievable == Fraction(3, 4)

    def test_is_counterexample(self, fig2_report):
        assert fig2_report.is_counterexample()

    def test_conflict_is_on_p3_p4(self, fig2_report):
        """Figure 3(d): edge P3->P4 must carry one `a` and one `b` message
        per two time-units at cost 2 each — occupation 2 > 1."""
        assert fig2_report.conflicts == {("P3", "P4"): Fraction(2)}

    def test_figure_3a_flows(self, fig2_report):
        """Figure 3(a): messages towards P5 — 1/2 on each of six edges."""
        expected = {
            ("P0", "P1"), ("P1", "P5"),
            ("P0", "P2"), ("P2", "P3"), ("P3", "P4"), ("P4", "P5"),
        }
        assert set(fig2_report.flows_p5) == expected
        assert all(v == Fraction(1, 2) for v in fig2_report.flows_p5.values())

    def test_figure_3b_flows(self, fig2_report):
        """Figure 3(b): messages towards P6 — 1/2 on each of six edges."""
        expected = {
            ("P0", "P1"), ("P1", "P3"), ("P3", "P4"), ("P4", "P6"),
            ("P0", "P2"), ("P2", "P6"),
        }
        assert set(fig2_report.flows_p6) == expected
        assert all(v == Fraction(1, 2) for v in fig2_report.flows_p6.values())

    def test_figure_3c_total_flows(self, fig2_report):
        """Figure 3(c): every platform edge carries messages; the shared
        edges coincide at the source and collide at P3->P4."""
        total = fig2_report.total_flows
        # source edges: the two copies are one physical message
        assert total[("P0", "P1")] == Fraction(1, 2)
        assert total[("P0", "P2")] == Fraction(1, 2)
        # the conflict edge: distinct a and b messages add up
        assert total[("P3", "P4")] == 1

    def test_lp_flows_satisfy_max_rule(self, fig2_report):
        """The per-target flows claimed by the figure must be an optimal
        max-LP solution: each edge's occupation (max over targets x c)
        fits, and P0's one-port is exactly saturated."""
        g = fig2_report.platform
        for e in set(fig2_report.flows_p5) | set(fig2_report.flows_p6):
            occupation = max(
                fig2_report.flows_p5.get(e, Fraction(0)),
                fig2_report.flows_p6.get(e, Fraction(0)),
            ) * g.c(*e)
            assert occupation <= 1
        p0_busy = sum(
            (max(fig2_report.flows_p5.get(("P0", j), Fraction(0)),
                 fig2_report.flows_p6.get(("P0", j), Fraction(0)))
             * g.c("P0", j)
             for j in g.successors("P0")),
            start=Fraction(0),
        )
        assert p0_busy == 1


class TestBracket:
    def test_fig2_bracket(self, fig2):
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        assert analysis.sum_lp <= analysis.tree_optimal <= analysis.max_lp
        assert not analysis.max_lp_achievable

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_random_platform_bracket(self, seed):
        g = gen.random_connected(6, seed=seed, extra_edge_prob=0.2)
        targets = [n for n in g.nodes() if n != "R0"][:2]
        analysis = solve_multicast(g, "R0", targets)
        assert analysis.bracket_ok()

    def test_single_target_multicast_is_unicast(self):
        """One target: sum and max rules coincide; packing matches."""
        g = gen.chain(3, link_c=2)
        analysis = solve_multicast(g, "N0", ["N2"])
        assert analysis.sum_lp == analysis.max_lp == analysis.tree_optimal

    def test_broadcast_targets_make_bound_achievable(self, fig2):
        """With ALL nodes as targets (broadcast), the max bound IS met —
        the paper's contrast between multicast and broadcast."""
        targets = [n for n in fig2.nodes() if n != "P0"]
        analysis = solve_multicast(fig2, "P0", targets)
        assert analysis.tree_optimal == analysis.max_lp


class TestSingleTree:
    def test_fig2_best_single_tree(self, fig2):
        rate, tree = best_single_tree(fig2, "P0", ["P5", "P6"])
        # direct two-branch tree: P0 sends twice at c=1 -> rate 1/2
        assert rate == Fraction(1, 2)
        assert tree == frozenset(
            {("P0", "P1"), ("P1", "P5"), ("P0", "P2"), ("P2", "P6")}
        )

    def test_packing_beats_single_tree_on_fig2(self, fig2):
        analysis = solve_multicast(fig2, "P0", ["P5", "P6"])
        rate, _ = best_single_tree(fig2, "P0", ["P5", "P6"])
        assert analysis.tree_optimal > rate


class TestBoundsFunction:
    def test_bounds_order(self, fig2):
        sum_lp, max_lp = multicast_bounds(fig2, "P0", ["P5", "P6"])
        assert sum_lp <= max_lp

    def test_scipy_backend_close(self, fig2):
        es, em = multicast_bounds(fig2, "P0", ["P5", "P6"])
        ss, sm = multicast_bounds(fig2, "P0", ["P5", "P6"], backend="scipy")
        assert abs(float(es - ss)) < 1e-7
        assert abs(float(em - sm)) < 1e-7
