"""LP-duality certificate tests."""

from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.certificates import build_ssms_dual, ssms_certificate
from repro.platform import generators as gen


class TestStrongDuality:
    def test_certificates_are_tight(self, any_platform):
        name, platform, master = any_platform
        cert = ssms_certificate(platform, master)
        assert cert.optimal, name
        cert.verify_dual_feasibility()

    def test_fig1_certificate(self, fig1):
        cert = ssms_certificate(fig1, "P1")
        assert cert.primal_value == cert.dual_value == 2

    def test_prices_are_meaningful(self, star4):
        """On the star the binding resources carry positive prices."""
        cert = ssms_certificate(star4, "M")
        # the master's CPU saturates (alpha_M = 1): positive price
        assert cert.cpu_price.get("M", Fraction(0)) > 0
        total = (
            sum(cert.cpu_price.values(), start=Fraction(0))
            + sum(cert.send_price.values(), start=Fraction(0))
            + sum(cert.recv_price.values(), start=Fraction(0))
            + sum(cert.link_price.values(), start=Fraction(0))
        )
        assert total == cert.dual_value

    def test_bound_statement(self, star4):
        cert = ssms_certificate(star4, "M")
        text = cert.bound_statement()
        assert "3/2" in text and "tight: True" in text

    def test_tampered_certificate_detected(self, star4):
        cert = ssms_certificate(star4, "M")
        cert.cpu_price["M"] = Fraction(0)  # break the CPU constraint
        with pytest.raises(AssertionError):
            cert.verify_dual_feasibility()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=5000),
           st.integers(min_value=3, max_value=6))
    def test_duality_on_random_platforms(self, seed, n):
        platform = gen.random_connected(n, seed=seed)
        cert = ssms_certificate(platform, "R0")
        assert cert.optimal
        cert.verify_dual_feasibility()


class TestDualStructure:
    def test_dual_lp_shape(self, star4):
        dual = build_ssms_dual(star4, "M")
        stats = dual.stats()
        # mu per compute node, sigma/rho per node, tau per edge, pi per
        # non-master node
        p, e = star4.num_nodes, star4.num_edges
        assert stats["variables"] == p + 2 * p + e + (p - 1)
        assert stats["constraints"] == p + e  # cpu rows + edge rows

    def test_dual_objective_independent_of_master_potential(self, star4):
        """pi_m is fixed to 0 by exclusion; solving must not create it."""
        dual = build_ssms_dual(star4, "M")
        names = {v.name for v in dual.variables}
        assert "pi[M]" not in names
