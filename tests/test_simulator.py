"""Simulator tests: event engine, traces and model validators."""

from fractions import Fraction

import pytest

from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.trace import Interval, ModelViolation, Trace


class TestEngine:
    def test_events_in_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3, lambda: log.append("c"))
        sim.schedule(1, lambda: log.append("a"))
        sim.schedule(2, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_tie_break_is_fifo(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append("first"))
        sim.schedule(1, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_horizon_exclusive(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append("late"))
        end = sim.run(until=5)
        assert log == [] and end == 5

    def test_resume_after_horizon(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append("x"))
        sim.run(until=3)
        sim.run()
        assert log == ["x"]

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(sim.now)
            sim.schedule(2, lambda: log.append(sim.now))

        sim.schedule(1, first)
        sim.run()
        assert log == [1, 3]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(2, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        log = []
        entry = sim.schedule(1, lambda: log.append("no"))
        sim.cancel(entry)
        sim.run()
        assert log == []

    def test_exact_fraction_times(self):
        sim = Simulator()
        times = []
        sim.schedule(Fraction(1, 3), lambda: times.append(sim.now))
        sim.schedule(Fraction(2, 3), lambda: times.append(sim.now))
        sim.run()
        assert times == [Fraction(1, 3), Fraction(2, 3)]

    def test_event_budget(self):
        sim = Simulator()

        def loop():
            sim.schedule(1, loop)

        sim.schedule(1, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=10)


class TestTrace:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Interval("A", "send", Fraction(2), Fraction(1))

    def test_busy_time_and_units(self):
        t = Trace()
        t.record("A", "send", 0, 2, peer="B", units=2)
        t.record("A", "send", 3, 4, peer="B", units=1)
        assert t.busy_time("A", "send") == 3
        assert t.units("A", "send") == 3

    def test_one_port_ok(self):
        t = Trace()
        t.record("A", "send", 0, 1, peer="B")
        t.record("A", "send", 1, 2, peer="C")  # touching is fine
        t.record("A", "recv", 0, 2, peer="D")  # overlap with send is fine
        t.validate("one-port")

    def test_one_port_overlapping_sends(self):
        t = Trace()
        t.record("A", "send", 0, 2, peer="B")
        t.record("A", "send", 1, 3, peer="C")
        with pytest.raises(ModelViolation):
            t.validate("one-port")

    def test_one_port_overlapping_recvs(self):
        t = Trace()
        t.record("A", "recv", 0, 2, peer="B")
        t.record("A", "recv", 1, 3, peer="C")
        with pytest.raises(ModelViolation):
            t.validate("one-port")

    def test_send_or_receive_rejects_overlap(self):
        t = Trace()
        t.record("A", "send", 0, 2, peer="B")
        t.record("A", "recv", 1, 3, peer="C")
        t.validate("one-port")  # fine under full overlap
        with pytest.raises(ModelViolation):
            t.validate("send-or-receive")

    def test_multiport_allows_k(self):
        t = Trace()
        t.record("A", "send", 0, 2, peer="B")
        t.record("A", "send", 0, 2, peer="C")
        with pytest.raises(ModelViolation):
            t.validate("one-port")
        t.validate("multiport", ports=2)
        with pytest.raises(ModelViolation):
            t.validate("multiport", ports=1)

    def test_unknown_model(self):
        t = Trace()
        with pytest.raises(ValueError):
            t.validate("quantum")

    def test_compute_never_overlaps_itself(self):
        t = Trace()
        t.record("A", "compute", 0, 2)
        t.record("A", "compute", 1, 3)
        with pytest.raises(ModelViolation):
            t.validate("one-port")

    def test_zero_length_intervals_ignored(self):
        t = Trace()
        t.record("A", "send", 1, 1, peer="B")
        t.record("A", "send", 1, 2, peer="C")
        t.validate("one-port")

    def test_matched_transfers(self):
        t = Trace()
        t.record("A", "send", 0, 1, peer="B", units=1)
        t.record("B", "recv", 0, 1, peer="A", units=1)
        t.check_matched_transfers()

    def test_unmatched_transfers_detected(self):
        t = Trace()
        t.record("A", "send", 0, 1, peer="B", units=1)
        with pytest.raises(ModelViolation):
            t.check_matched_transfers()

    def test_gantt_renders(self):
        t = Trace()
        t.record("A", "send", 0, 1, peer="B")
        t.record("B", "recv", 0, 1, peer="A")
        t.record("B", "compute", 1, 3)
        art = t.gantt(width=20)
        assert "A" in art and "#" in art

    def test_gantt_empty(self):
        assert "empty" in Trace().gantt()
