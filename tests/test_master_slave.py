"""SSMS(G) tests: the section 3.1 LP, its invariants and its oracles."""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro._rational import INF
from repro.core.activities import SteadyStateError
from repro.core.master_slave import (
    bandwidth_centric_rates,
    ntask,
    solve_master_slave,
    star_throughput,
)
from repro.platform import generators as gen
from repro.platform.graph import Platform


class TestStarOracle:
    """On stars the LP must equal the greedy fractional knapsack."""

    def test_hand_computed(self):
        # master w=2 (rate 1/2); workers (w=1,c=1), (w=2,c=2), (w=4,c=3)
        # port: serve c=1 first at rate 1 (uses all budget) -> total 3/2
        g = gen.star(3, master_w=2, worker_w=[1, 2, 4], link_c=[1, 2, 3])
        assert ntask(g, "M") == Fraction(3, 2)

    def test_port_leftover_spills_to_next_worker(self):
        # worker1 (w=4, c=1): rate capped at 1/4, uses 1/4 of port;
        # worker2 (w=2, c=3): gets 3/4 budget -> rate 1/4
        g = gen.star(2, master_w=1, worker_w=[4, 2], link_c=[1, 3])
        assert ntask(g, "M") == 1 + Fraction(1, 4) + Fraction(1, 4)

    def test_bandwidth_beats_speed(self):
        """A fast worker behind a slow link loses to a slow, close one."""
        g = gen.star(2, master_w=1, worker_w=[1, 10], link_c=[10, 1])
        rates = bandwidth_centric_rates(
            [Fraction(1), Fraction(10)], [Fraction(10), Fraction(1)]
        )
        # the slow-but-close worker is served first
        assert rates[1] == Fraction(1, 10)
        assert ntask(g, "M") == 1 + sum(rates, start=Fraction(0))

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),   # w
                st.integers(min_value=1, max_value=8),   # c
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(min_value=1, max_value=5),            # master w
    )
    def test_lp_equals_greedy_oracle(self, workers, master_w):
        ws = [Fraction(w) for w, _ in workers]
        cs = [Fraction(c) for _, c in workers]
        g = gen.star(len(workers), master_w=master_w, worker_w=ws, link_c=cs)
        lp_value = ntask(g, "M")
        oracle = star_throughput(Fraction(master_w), ws, cs)
        assert lp_value == oracle


class TestInvariants:
    def test_solution_verifies(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        sol.verify()  # raises on any violation

    def test_master_receives_nothing(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        for j in platform.predecessors(master):
            assert sol.s.get((j, master), Fraction(0)) == 0

    def test_throughput_at_least_master_alone(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        spec = platform.node(master)
        if spec.can_compute:
            assert sol.throughput >= Fraction(1) / spec.w

    def test_throughput_le_total_compute_power(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        cap = sum(
            (Fraction(1) / platform.node(n).w
             for n in platform.compute_nodes()),
            start=Fraction(0),
        )
        assert sol.throughput <= cap

    def test_objective_equals_sum_of_rates(self, any_platform):
        name, platform, master = any_platform
        sol = solve_master_slave(platform, master)
        assert sol.total_compute_rate() == sol.throughput

    def test_scipy_backend_agrees(self, any_platform):
        name, platform, master = any_platform
        exact = solve_master_slave(platform, master)
        approx = solve_master_slave(platform, master, backend="scipy")
        assert abs(float(exact.throughput) - float(approx.throughput)) < 1e-7


class TestSpecialPlatforms:
    def test_figure1(self, fig1):
        sol = solve_master_slave(fig1, "P1")
        assert sol.throughput == 2
        sol.verify()

    def test_forwarder_master(self):
        """A master with no compute power still distributes everything."""
        g = Platform("fw")
        g.add_node("M", INF)
        g.add_node("W", 1)
        g.add_edge("M", "W", 2)
        sol = solve_master_slave(g, "M")
        assert sol.throughput == Fraction(1, 2)
        assert "M" not in sol.alpha

    def test_forwarder_relay(self):
        """Pure relays forward without computing."""
        g = Platform("relay")
        g.add_node("M", 1)
        g.add_node("R", INF)
        g.add_node("W", 1)
        g.add_edge("M", "R", 1)
        g.add_edge("R", "W", 1)
        sol = solve_master_slave(g, "M")
        assert sol.throughput == 2  # master 1 + worker 1 through the relay
        sol.verify()

    def test_isolated_master(self):
        g = Platform("iso")
        g.add_node("M", 3)
        sol = solve_master_slave(g, "M")
        assert sol.throughput == Fraction(1, 3)

    def test_unreachable_component_gets_nothing(self):
        g = Platform("unreach")
        g.add_node("M", 1)
        g.add_node("W", 1)
        g.add_node("X", 1)   # no edges at all
        g.add_edge("M", "W", 1)
        sol = solve_master_slave(g, "M")
        assert sol.throughput == 2
        assert sol.alpha.get("X", Fraction(0)) == 0

    def test_chain_bottleneck(self):
        """On a chain every hop repeats the transfer: port limits cascade."""
        g = gen.chain(3, node_w=1, link_c=1)
        sol = solve_master_slave(g, "N0")
        # N0 computes 1, sends at most 1/time-unit; N1 computes x, forwards y
        # with x + y = 1; N2 computes y. Total = 2.
        assert sol.throughput == 2

    def test_cycle_platform_flows_are_acyclic(self):
        g = gen.grid2d(2, 2, seed=8)
        sol = solve_master_slave(g, "G0_0")
        rates = {
            e: sol.edge_rate(*e) for e in sol.s if sol.s[e] > 0
        }
        from repro.schedule.flows import cancel_cycles

        assert cancel_cycles(rates) == {k: v for k, v in rates.items() if v > 0}

    def test_unknown_master_raises(self, star4):
        from repro.platform.graph import PlatformError

        with pytest.raises(PlatformError):
            solve_master_slave(star4, "nope")


class TestConservationDetection:
    def test_tampered_solution_caught(self, star4):
        sol = solve_master_slave(star4, "M")
        # corrupt one activity: conservation must now fail
        key = next(e for e in sol.s if sol.s[e] > 0)
        sol.s[key] = sol.s[key] / 2
        with pytest.raises(SteadyStateError):
            sol.verify()

    def test_alpha_out_of_bounds_caught(self, star4):
        sol = solve_master_slave(star4, "M")
        node = next(iter(sol.alpha))
        sol.alpha[node] = Fraction(2)
        with pytest.raises(SteadyStateError):
            sol.check_bounds()

    def test_one_port_violation_caught(self, star4):
        sol = solve_master_slave(star4, "M")
        for j in star4.successors("M"):
            sol.s[("M", j)] = Fraction(1)
        with pytest.raises(SteadyStateError):
            sol.check_one_port()
