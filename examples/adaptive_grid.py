#!/usr/bin/env python3
"""Dynamic steady-state scheduling on a drifting platform (section 5.5).

CPU speeds and link bandwidths drift epoch by epoch (simulated NWS-style
monitoring).  Three strategies compete:

* static   — plan once on the initial measurements, never replan;
* adaptive — replan each epoch with the previous epoch's observations
             ("use the past to predict the future");
* oracle   — replan with perfect knowledge (unattainable upper reference).

Run:  python examples/adaptive_grid.py
"""

from repro import SlidingWindowPredictor, TimeVaryingPlatform, generators, run_adaptive
from repro.analysis.reporting import render_table


def main() -> None:
    base = generators.star(
        4, master_w=2, worker_w=[1, 2, 3, 4], link_c=[1, 1, 2, 3]
    )
    print(base.describe())
    print()

    epochs = 10
    rows = []
    per_epoch = {}
    for strategy in ("static", "adaptive", "oracle"):
        varying = TimeVaryingPlatform(base, drift=0.35, seed=2024)
        result = run_adaptive(
            varying, "M", epochs=epochs, strategy=strategy,
            predictor=SlidingWindowPredictor(window=3)
            if strategy == "adaptive" else None,
        )
        rows.append([
            strategy,
            float(result.total_achieved),
            float(result.mean_efficiency),
        ])
        per_epoch[strategy] = [
            float(e.efficiency) for e in result.epochs
        ]

    print(render_table(
        ["strategy", "total tasks/unit-epoch", "mean efficiency"],
        rows,
        title=f"{epochs} epochs of drifting platform (seed 2024)",
    ))
    print()
    header = ["epoch"] + list(per_epoch)
    eff_rows = [
        [e] + [per_epoch[s][e] for s in per_epoch] for e in range(epochs)
    ]
    print(render_table(
        header, eff_rows, title="per-epoch efficiency (achieved / optimal)"
    ))
    print()
    print("the adaptive planner lags one epoch behind reality but tracks "
          "the drift; the static plan decays as the platform walks away "
          "from its initial measurements.")


if __name__ == "__main__":
    main()
