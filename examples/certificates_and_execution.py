#!/usr/bin/env python3
"""Optimality certificates and task-level execution.

Two guarantees the library makes machine-checkable:

1. **The LP bound is proved, not just computed** — the explicit SSMS dual
   yields port prices and task potentials certifying that *no* steady-state
   schedule beats ``ntask(G)`` (strong duality, exact rationals).
2. **The schedule delivers whole tasks, not fluid rates** — the event
   executor moves integral task files under strict buffer discipline and
   still completes exactly ``T * ntask`` tasks per period once primed.

Run:  python examples/certificates_and_execution.py
"""

from fractions import Fraction

from repro import generators, reconstruct_schedule, solve_master_slave, ssms_certificate
from repro.core.throughput_bounds import bound_envelope
from repro.simulator.event_executor import EventExecutor
from repro.analysis.reporting import render_table


def main() -> None:
    platform = generators.grid2d(3, 3, seed=3)
    master = "G0_0"
    print(f"platform: {platform.name} ({platform.num_nodes} nodes, "
          f"{platform.num_edges} edges), master {master}")
    print()

    # -- the certificate ---------------------------------------------------
    cert = ssms_certificate(platform, master)
    print(cert.bound_statement())
    print()
    rows = [["ntask(G) — the LP optimum", cert.primal_value],
            ["dual certificate value", cert.dual_value]]
    for label, bound in bound_envelope(platform, master).items():
        rows.append([f"closed-form bound: {label}", bound])
    print(render_table(["quantity", "tasks per time-unit"], rows))
    print()
    print("non-zero resource prices (where the platform saturates):")
    for node, price in sorted(cert.cpu_price.items()):
        if price:
            print(f"  CPU of {node}: {price}")
    for node, price in sorted(cert.send_price.items()):
        if price:
            print(f"  send port of {node}: {price}")
    for node, price in sorted(cert.recv_price.items()):
        if price:
            print(f"  recv port of {node}: {price}")
    print()

    # -- task-level execution ----------------------------------------------
    schedule = reconstruct_schedule(solve_master_slave(platform, master))
    result = EventExecutor(schedule).run(10)
    result.trace.validate("one-port")
    print(render_table(
        ["period", "whole tasks completed"],
        [[p, c] for p, c in enumerate(result.completed_per_period)],
        title=f"integral execution (period T = {schedule.period}, "
              f"target {schedule.tasks_per_period()} tasks/period)",
    ))
    print()
    print(f"messages moved: {len(result.messages)}; every one a whole task "
          "file, every port interval validated against the one-port model.")


if __name__ == "__main__":
    main()
