#!/usr/bin/env python3
"""The paper's multicast counterexample (section 4.3, Figures 2-3).

Walks through the complete argument numerically:

* the optimistic ``max``-rule LP promises one multicast per time-unit;
* the per-target flows of Figures 3(a)/3(b) realise that bound on paper;
* the one-port constraint at P0 forces odd (``a``) and even (``b``)
  instances onto different entry points, so the flows crossing P3->P4
  belong to *distinct* messages — the edge would need occupation 2 > 1
  (Figure 3(d));
* exhaustive Steiner-arborescence packing shows the true optimum is 3/4;
* the pessimistic scatter-style LP only promises 1/2.

Run:  python examples/multicast_counterexample.py
"""

from repro import analyze_figure2, best_single_tree, packing_to_schedule, solve_multicast
from repro.analysis.reporting import render_edge_flows, render_table


def main() -> None:
    report = analyze_figure2()
    g = report.platform
    print(g.describe())
    print()

    print(render_edge_flows(
        report.flows_p5,
        title="Figure 3(a): message rate per edge, target P5",
    ))
    print()
    print(render_edge_flows(
        report.flows_p6,
        title="Figure 3(b): message rate per edge, target P6",
    ))
    print()
    print(render_edge_flows(
        report.total_flows,
        title="Figure 3(c): distinct messages each edge must carry",
    ))
    print()

    print("Figure 3(d): conflicting edges (occupation > 1):")
    for (u, v), occupation in report.conflicts.items():
        print(f"  {u} -> {v}: needs {occupation} time-units of transfer "
              f"per time-unit — impossible")
    print()

    rate1, tree1 = best_single_tree(g, "P0", ["P5", "P6"])
    analysis = solve_multicast(g, "P0", ["P5", "P6"])
    sched = packing_to_schedule(g, analysis.packing, "P0", "multicast")
    print(render_table(
        ["quantity", "throughput"],
        [
            ["sum-rule LP (scatter accounting, pessimistic)", report.sum_lp],
            ["best single multicast tree", rate1],
            ["optimal tree packing (the true optimum)", report.achievable],
            ["max-rule LP (optimistic bound)", report.max_lp],
        ],
        title="the multicast throughput bracket on Figure 2's platform",
    ))
    print()
    print(f"the packing uses {len(analysis.packing)} trees; the resulting "
          f"periodic schedule (period {sched.period}) is feasible and "
          f"delivers {sched.throughput} multicasts per time-unit.")
    print("conclusion: the LP bound of "
          f"{report.max_lp} is NOT achievable — determining the optimal "
          "multicast throughput is NP-hard in general [7].")


if __name__ == "__main__":
    main()
