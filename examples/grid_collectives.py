#!/usr/bin/env python3
"""Pipelined collective operations on a cluster-of-clusters platform.

The paper's motivating scenario: several clusters federated through slow
backbone links.  We compute the optimal steady-state throughput of the
pipelined collectives of sections 3-4 — scatter, gather, broadcast,
reduce — plus the master-slave tasking rate, all on the same platform.

Run:  python examples/grid_collectives.py
"""

from repro import (
    broadcast_lp_bound,
    generators,
    ntask,
    solve_broadcast,
    solve_gather,
    solve_reduce,
    solve_scatter,
)
from repro.analysis.reporting import render_table


def main() -> None:
    platform = generators.clustered(
        n_clusters=2, cluster_size=3, seed=42,
        intra_c=(1, 2), inter_c=(4, 6),
    )
    print(platform.describe())
    print()

    source = "C0_0"
    others = [n for n in platform.nodes() if n != source]

    rows = []
    rows.append(["master-slave tasking ntask(G)", ntask(platform, source)])

    scatter = solve_scatter(platform, source, others)
    rows.append(["pipelined scatter (all nodes)", scatter.throughput])

    gather = solve_gather(platform, source, others)
    rows.append(["pipelined gather (all nodes)", gather.throughput])

    broadcast = solve_broadcast(platform, source)
    note = "optimal" if broadcast.optimal else "lower bound"
    rows.append(
        [f"pipelined broadcast ({note}, {len(broadcast.packing)} trees)",
         broadcast.achieved]
    )

    reduce_sol = solve_reduce(platform, source)
    rows.append(["pipelined reduce", reduce_sol.achieved])

    print(render_table(
        ["operation", "ops per time-unit"],
        rows,
        title=f"steady-state collective throughput from {source}",
    ))
    print()
    print("broadcast LP bound:", broadcast.lp_bound,
          "— achieved exactly by the arborescence packing"
          if broadcast.optimal else "— greedy packing (platform too big "
          "for exhaustive enumeration)")


if __name__ == "__main__":
    main()
