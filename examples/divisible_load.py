#!/usr/bin/env python3
"""Divisible load with start-up costs (section 5.2, ref [8]).

A bag of ``W`` divisible work units is spread over a one-port star whose
links charge an affine cost ``C_k + c_k * n``.  The classical one-round
schedule distributes everything in a single sweep; the paper's periodic
multi-round strategy groups ``m ≈ sqrt(W/rate)`` elementary periods per
round so the start-ups amortise, and is asymptotically optimal.

Run:  python examples/divisible_load.py
"""

from fractions import Fraction

from repro import StarWorker, makespan_lower_bound, multi_round_makespan, one_round_schedule
from repro.analysis.reporting import render_series, render_table


def main() -> None:
    workers = [
        StarWorker(w=Fraction(1), c=Fraction(1), startup=Fraction(2)),
        StarWorker(w=Fraction(2), c=Fraction(1), startup=Fraction(4)),
        StarWorker(w=Fraction(3), c=Fraction(2), startup=Fraction(2)),
        StarWorker(w=Fraction(5), c=Fraction(3), startup=Fraction(8)),
    ]
    print("star platform, per-worker (w, c, C):")
    for k, wk in enumerate(workers):
        print(f"  worker {k}: w={wk.w} c={wk.c} C={wk.startup}")
    print()

    rows = []
    series = []
    for exp in range(1, 7):
        W = Fraction(10 ** exp)
        one, _ = one_round_schedule(W, workers)
        multi = multi_round_makespan(W, workers)
        lb = makespan_lower_bound(W, workers)
        rows.append([
            f"1e{exp}",
            float(one / lb),
            float(multi / lb),
        ])
        series.append((10 ** exp, multi / lb))

    print(render_table(
        ["load W", "one-round / bound", "multi-round / bound"],
        rows,
        title="makespan ratios versus the steady-state lower bound W/rate",
    ))
    print()
    print(render_series(
        series, "W", "multi/bound",
        title="multi-round convergence (ratio -> 1 like 1 + O(1/sqrt(W)))",
    ))
    print()
    print("one-round schedules serialise the whole distribution before "
          "anyone at the end of the chain starts: their ratio plateaus.\n"
          "the periodic strategy overlaps rounds and only pays "
          "O(sqrt(W)) in start-ups and phases — section 5.2's analysis.")


if __name__ == "__main__":
    main()
