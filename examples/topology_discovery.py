#!/usr/bin/env python3
"""Topology discovery and scheduling on inferred views (section 5.3).

The true topology of a wide-area platform is unknowable; schedulers work
with probe-based views.  This example reconstructs the three views the
paper discusses — ENV-style tree, AlNeM-style graph, ping-based complete
graph — on a random ground-truth platform, plans SSMS on each, and shows
what the plans actually deliver when run against the truth.

Run:  python examples/topology_discovery.py
"""

from repro import generators, solve_master_slave, view_quality
from repro.dynamic.adaptive import realized_rate
from repro.platform.topology import (
    alnem_graph_view,
    complete_graph_view,
    env_tree_view,
)
from repro.analysis.reporting import render_table


def main() -> None:
    truth = generators.random_connected(9, seed=21)
    master = "R0"
    print("ground-truth platform (normally unobservable):")
    print(truth.describe())
    print()

    views = {
        "env-tree": env_tree_view(truth, master),
        "alnem": alnem_graph_view(truth),
        "complete": complete_graph_view(truth),
    }
    q = view_quality(truth, master)

    rows = []
    for name, view in views.items():
        plan = solve_master_slave(view, master)
        achieved = (
            realized_rate(view, truth, master, plan)
            if name != "complete"
            else None  # phantom edges cannot be executed literally
        )
        rows.append([
            name,
            view.num_edges,
            float(plan.throughput),
            "n/a" if achieved is None else float(achieved),
        ])
    rows.append(["truth", truth.num_edges, float(q["truth"]),
                 float(q["truth"])])

    print(render_table(
        ["view", "#edges", "planned ntask", "achieved on truth"],
        rows,
        title="planning on discovered topologies",
    ))
    print()
    print("the inferred views are subgraphs of the truth, so their plans "
          "are safe (achieved == planned);\nthe ping-based complete graph "
          "contains phantom direct links that no real transfer can use.\n"
          "for master-slave tasking the tree view is often exact — the "
          "paper's rationale for ENV (§5.3).")


if __name__ == "__main__":
    main()
