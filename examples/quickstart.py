#!/usr/bin/env python3
"""Quickstart: steady-state master-slave scheduling in five steps.

1. build a heterogeneous platform (section 2's model);
2. solve the SSMS linear program (section 3.1) for the optimal
   steady-state throughput ``ntask(G)``;
3. reconstruct the compact periodic schedule (section 4.1);
4. execute it in the one-port simulator and watch it prime into steady
   state (section 4.2);
5. compare with the demand-driven baseline.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    PeriodicRunner,
    generators,
    reconstruct_schedule,
    run_demand_driven,
    solve_master_slave,
)
from repro.analysis.reporting import render_table


def main() -> None:
    # -- 1. platform: one master, four heterogeneous workers ------------
    platform = generators.star(
        4,
        master_w=2,                   # the master takes 2 time-units per task
        worker_w=[1, 2, 3, 4],        # workers of decreasing speed
        link_c=[1, 1, 2, 3],          # and increasingly expensive links
    )
    print(platform.describe())
    print()

    # -- 2. the steady-state LP ------------------------------------------
    solution = solve_master_slave(platform, "M")
    print(solution.summary())
    print()

    # -- 3. schedule reconstruction ---------------------------------------
    schedule = reconstruct_schedule(solution)
    print(schedule.describe())
    print()

    # -- 4. execution -------------------------------------------------------
    result = PeriodicRunner(schedule, record_trace=True).run(12)
    result.trace.validate("one-port")  # machine-checked model compliance
    rows = []
    for p, done in enumerate(result.completed_per_period):
        rows.append([p, done, float(done / schedule.period)])
    print(render_table(
        ["period", "tasks done", "rate"],
        rows,
        title="periodic execution (watch the initialisation phase!)",
    ))
    print(f"\ndeficit vs steady-state bound: {result.deficit} tasks "
          f"(a constant, independent of the horizon)")
    print()

    # -- 5. baseline comparison ---------------------------------------------
    horizon = 12 * schedule.period
    comparison = [["steady-state (LP)", float(solution.throughput)]]
    for policy in ("bandwidth", "fastest", "round-robin"):
        res = run_demand_driven(platform, "M", horizon, policy=policy)
        comparison.append([f"demand-driven / {policy}", float(res.rate)])
    print(render_table(
        ["strategy", "tasks per time-unit"],
        comparison,
        title=f"achieved rates over {horizon} time-units",
    ))


if __name__ == "__main__":
    main()
